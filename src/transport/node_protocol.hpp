// Per-node state machine of the Section 5 protocol (DESIGN.md §15).
//
// dos/node_sim.cpp runs the whole replicated-supernode epoch inside one
// function with shared memory; this class re-expresses the SAME protocol as
// one node's view — receive frames, compute, emit frames — so it can run
// over any Transport: the in-process bus (lockstep, deterministic) or live
// UDP across processes (deadline-paced). Decision for decision it mirrors
// node_sim (candidate/sync rounds, lowest-id adoption, the four
// reorganization rounds), and it replays node_sim's exact per-epoch Rng
// split order, so a no-fault in-process run reproduces run_node_level_epoch's
// reorganized group table bit for bit (asserted in tests/transport_test.cpp).
//
// On top of node_sim's rounds the per-node protocol adds what a distributed
// run needs and a centralized one does not:
//   * a d-round hypercube all-gather of the new group table (node_sim reads
//     it out of shared memory; live nodes must learn it to start the next
//     epoch),
//   * a commit/fallback round: a node whose gathered table is incomplete or
//     conflicted — or whose old group voted incomplete — falls back to the
//     previous configuration and retries the epoch with fresh streams,
//     bounded by max_attempts (graceful degradation, never wedge),
//   * epoch/attempt tags on every frame so stragglers from an aborted
//     attempt cannot corrupt the retry,
//   * per-round heartbeats carrying the epoch position (pacer liveness), and
//   * an optional DHT smoke phase after the last epoch: every node routes a
//     greedy bit-fixing lookup (apps/dht key hashing) over the final tables.
//
// Epoch round layout, with P = 2 * schedule.iterations + 1 primitive rounds:
//   [0, 2P)               sampler simulation/synchronization (node_sim)
//   2P .. 2P+3            reorganization rounds A-D (node_sim)
//   [2P+4, 2P+4+d)        table all-gather along hypercube dimensions
//   2P+4+d                merge + completeness vote to the old group
//   2P+5+d                commit or fallback; next epoch starts next round
// Every attempt of one epoch occupies exactly 2P + d + 6 rounds.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "dos/group_table.hpp"
#include "sampling/hypercube_sampler.hpp"
#include "sampling/schedule.hpp"
#include "sim/bus.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"
#include "transport/wire.hpp"

namespace reconfnet::transport {

class NodeProtocol {
 public:
  struct Config {
    std::uint64_t seed = 1;
    int epochs = 1;
    int max_attempts = 3;  ///< epoch retries before giving up on it
    sampling::SamplingConfig sampling{};
    int size_estimate_slack = 0;
    bool dht_smoke = false;  ///< run the lookup phase after the last epoch
  };

  struct Metrics {
    std::int64_t epochs_completed = 0;
    std::int64_t epochs_failed = 0;  ///< epochs abandoned after max_attempts
    std::int64_t attempts = 0;       ///< epoch attempts started
    std::int64_t fallbacks = 0;      ///< attempts ended in fallback
    std::int64_t resyncs = 0;        ///< state adopted from a broadcast
    std::int64_t sample_shortages = 0;
    std::int64_t doomed_attempts = 0;  ///< aborted on group silence
    std::int64_t knowledge_epochs = 0;  ///< epochs with full Lemma 15 view
    std::int64_t rounds_total = 0;
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t bits_sent = 0;      ///< protocol frames only
    std::uint64_t bits_received = 0;  ///< protocol frames only
    std::uint64_t stale_frames = 0;   ///< mismatched epoch/attempt tags
    bool lookup_ok = false;  ///< DHT smoke reply reached us
    bool finished = false;
  };

  using Outbox = std::vector<std::pair<sim::NodeId, Message>>;

  NodeProtocol(sim::NodeId self, dos::GroupTable initial, Config config);

  /// Runs one protocol round: consumes the frames delivered for `round`
  /// (sent in round - 1), appends outgoing (destination, frame) pairs —
  /// heartbeats included — and advances the internal phase machine. `dead`
  /// lists peers known dead (sorted; from the pacer's evictions or the
  /// fault plan), feeding the group-silence abort. Returns false once all
  /// epochs and the smoke phase are done (the caller may keep pacing/linger).
  bool on_round(sim::Round round,
                std::span<const sim::Envelope<Message>> inbox, Outbox& out,
                std::span<const sim::NodeId> dead);

  [[nodiscard]] bool finished() const { return metrics_.finished; }
  [[nodiscard]] const dos::GroupTable& table() const { return table_; }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  [[nodiscard]] sim::NodeId self() const { return self_; }
  /// Rounds one attempt of the current epoch occupies.
  [[nodiscard]] int epoch_rounds() const { return epoch_rounds_; }

  /// Heartbeat/liveness peer set under the current table: every node, self
  /// excluded, ascending — the bus is globally synchronous, so live pacing
  /// must wait on the whole membership, not just the routing neighborhood.
  [[nodiscard]] std::vector<sim::NodeId> peers() const;

 private:
  enum class Mode { kEpochs, kSmoke, kDone };

  /// A supernode state replica: the sampler core after `seq` primitive
  /// rounds (node_sim's Snapshot, by value).
  struct Snap {
    sampling::HypercubeSamplerCore core;
    int seq = 0;
  };

  // --- phase handlers (r = round - epoch_start_) ----------------------------
  // All of them read the round's tag-checked frames from accepted_.
  void sampler_sim_round(int seq, Outbox& out);
  void sampler_sync_round(Outbox& out);
  void reorg_round_a(Outbox& out);
  void reorg_round_b(Outbox& out);
  void reorg_round_c(Outbox& out);
  void reorg_round_d();
  void allgather_round(int dim, Outbox& out);
  void vote_round(Outbox& out);
  void commit_round(sim::Round round);
  void smoke_round(sim::Round round, Outbox& out);

  /// Starts (or retries) the current epoch at `start_round`: re-derives the
  /// schedule and the node_sim-parity rng streams from the current table.
  void begin_attempt(sim::Round start_round);
  /// Epoch boundary bookkeeping: commit or fallback, retry budget, and the
  /// transition into the smoke/done modes. `next_start` is the first round
  /// of the next attempt (or of the smoke phase).
  void advance_epoch(bool committed, sim::Round next_start);
  /// Sets doomed_ when some current group has every member in `dead`.
  void check_doomed(std::span<const sim::NodeId> dead);
  /// Merges one incoming table fragment, tracking conflicts.
  void merge_table(const std::vector<TableEntry>& fragment);
  /// True iff the gathered table is a complete, conflict-free partition of
  /// the current node set into 2^d non-empty groups.
  [[nodiscard]] bool table_complete() const;

  [[nodiscard]] Snap rebuild(const SamplerState& state,
                             std::uint64_t supernode) const;
  [[nodiscard]] SamplerState freeze(const Snap& snap) const;
  /// node_sim's advance(): one primitive round on a copy of `prev`.
  [[nodiscard]] std::pair<Snap, std::vector<SuperMsg>> advance(
      const Snap& prev, const std::vector<SuperMsg>& incoming);

  /// Tags, meters and queues one protocol frame.
  void emit(Outbox& out, sim::NodeId to, Message msg);
  /// True iff the frame belongs to the current (epoch, attempt).
  [[nodiscard]] bool current_tag(const Message& msg) const;

  sim::NodeId self_;
  Config config_;
  dos::GroupTable table_;
  Mode mode_ = Mode::kEpochs;
  Metrics metrics_;

  // Epoch/attempt position.
  std::int64_t epoch_ = 0;
  std::int32_t attempt_ = 0;
  sim::Round epoch_start_ = 0;
  sim::Round current_round_ = 0;

  // Per-attempt derived state.
  std::uint64_t supernode_ = 0;
  sampling::Schedule schedule_;
  int primitive_rounds_ = 0;
  int epoch_rounds_ = 0;
  support::Rng rng_{0};
  std::optional<Snap> state_;
  bool doomed_ = false;

  // Reorganization state.
  std::vector<sim::NodeId> fresh_group_;  ///< R'(supernode_) from round B
  bool have_fresh_ = false;
  std::vector<sim::NodeId> own_new_group_;  ///< learned in round C
  std::uint64_t own_new_supernode_ = 0;
  bool own_new_group_known_ = false;
  std::set<std::uint64_t> neighbor_groups_seen_;  ///< learned in round D
  std::map<std::uint64_t, std::vector<sim::NodeId>> gathered_;
  bool gather_conflict_ = false;
  bool vote_complete_ = false;
  bool veto_seen_ = false;

  // DHT smoke state.
  sim::Round smoke_start_ = 0;
  std::set<sim::NodeId> lookups_seen_;

  // Scratch buffers (recycled across rounds).
  std::vector<const sim::Envelope<Message>*> accepted_;
  std::map<std::pair<std::uint64_t, std::uint32_t>, SuperMsg> super_dedup_;
  std::vector<SuperMsg> super_scratch_;
};

}  // namespace reconfnet::transport
