// The one sanctioned wall-clock site in src/ (see tools/lint/layers.toml
// [allow] RNL003): everything else in the transport layer takes time as an
// explicit now_us parameter.
#include "transport/clock.hpp"

#include <ctime>

namespace reconfnet::transport {

std::int64_t MonotonicClock::now_us() {
  std::timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<std::int64_t>(ts.tv_nsec) / 1'000;
}

void sleep_us(std::int64_t us) {
  if (us <= 0) return;
  std::timespec ts{};
  ts.tv_sec = us / 1'000'000;
  ts.tv_nsec = (us % 1'000'000) * 1'000;
  nanosleep(&ts, nullptr);
}

}  // namespace reconfnet::transport
