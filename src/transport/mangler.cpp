#include "transport/mangler.hpp"

#include "support/rng.hpp"

namespace reconfnet::transport {

PacketMangler::PacketMangler(fault::FaultPlan plan, std::uint64_t salt)
    : plan_(std::move(plan)), salt_(salt) {}

bool PacketMangler::drop(sim::NodeId from, sim::NodeId to, sim::Round round,
                         std::uint32_t attempt) {
  ++counters_.offered;
  // Same endpoint rule as FaultInjector::on_message: the sender must be up
  // in the sending round, the receiver in the delivery round.
  if (is_crashed(from, round) || is_crashed(to, round + 1)) {
    ++counters_.crash_drops;
    return true;
  }
  if (partitioned(from, to, round)) {
    ++counters_.partition_drops;
    return true;
  }
  if (plan_.loss > 0.0) {
    // Fresh pure draw per transmission attempt: a retransmitted datagram is
    // a new coin, so reliable links converge under loss.
    const std::uint64_t key =
        (from << 1) ^ (to * 0x9E3779B97F4A7C15ULL) ^
        (static_cast<std::uint64_t>(round) << 32) ^ attempt;
    if (hash_uniform(salt_ ^ 0x105Eull, key, attempt) < plan_.loss) {
      ++counters_.lost;
      return true;
    }
  }
  return false;
}

bool PacketMangler::is_crashed(sim::NodeId node, sim::Round tick) const {
  for (const fault::CrashEvent& event : plan_.crashes) {
    if (event.node != node || tick < event.at) continue;
    if (event.restart < 0 || tick < event.restart) return true;
  }
  return false;
}

bool PacketMangler::partitioned(sim::NodeId a, sim::NodeId b,
                                sim::Round tick) const {
  for (const fault::PartitionEvent& event : plan_.partitions) {
    if (tick < event.start || tick >= event.heal) continue;
    if (side_a(a, event) != side_a(b, event)) return true;
  }
  return false;
}

bool PacketMangler::side_a(sim::NodeId node,
                           const fault::PartitionEvent& event) const {
  // Deployments use id-threshold cuts so the side assignment is identical
  // across processes and across transports; salted-hash cuts fall back to
  // the deployment salt (which differs from the injector's rng-derived salt,
  // so cross-transport comparisons should prefer id_below).
  if (event.id_below != sim::kNoNode) return node < event.id_below;
  return hash_uniform(salt_ ^ event.salt, node, 0) < 0.5;
}

double PacketMangler::hash_uniform(std::uint64_t salt, std::uint64_t a,
                                   std::uint64_t b) const {
  std::uint64_t state = salt ^ (a * 0x9E3779B97F4A7C15ULL) ^
                        (b * 0xD1B54A32D192ED03ULL);
  const std::uint64_t bits = support::splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace reconfnet::transport
