// Live UDP transport backend (DESIGN.md §15).
//
// One non-blocking UDP socket per process, peers addressed as
// 127.0.0.1:(base_port + node id). Protocol frames (wire.hpp) travel inside
// link datagrams (reliable_link.hpp): heartbeats fire-and-forget, everything
// else through the per-peer reliable channel. Delivery reproduces the bus
// contract: incoming frames are staged by their sender-round tag and poll()
// releases exactly the previous round's stage; frames that miss their
// delivery window — at arrival or still staged once the window passed — are
// counted late and dropped (the live analog of the simulator's synchronous
// drop). Heartbeats are round-COMPLETION announcements: a node sends one
// only once every reliable frame of its current round is acked, so the
// pacer quorum doubles as a delivery barrier.
//
// The PacketMangler interposes at this seam, on every transmission attempt —
// the sender-side fault injection the deployment scripts drive. The datagram
// handler (on_datagram) is socket-free so tests can feed it raw bytes; the
// heartbeat path through it is allocation-free once warm (pinned by
// tools/hotcheck + tests/allocbudget_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "sim/types.hpp"
#include "transport/mangler.hpp"
#include "transport/reliable_link.hpp"
#include "transport/transport.hpp"
#include "transport/wire.hpp"

namespace reconfnet::transport {

struct UdpConfig {
  sim::NodeId self = 0;
  int nodes = 0;
  std::uint16_t base_port = 47000;
  std::uint32_t incarnation = 0;  ///< bumped by the deploy script on restart
  LinkConfig link{};
  /// Optional sender-side fault seam; consulted per transmission attempt.
  /// Not owned; may be nullptr.
  PacketMangler* mangler = nullptr;
};

class UdpTransport final : public Transport {
 public:
  struct Counters {
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_received = 0;
    std::uint64_t mangled = 0;         ///< transmissions eaten by the plan
    std::uint64_t send_errors = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t late_frames = 0;     ///< arrived after their delivery round
    std::uint64_t decode_failures = 0;
    std::uint64_t heartbeats_received = 0;
  };

  explicit UdpTransport(UdpConfig config);
  ~UdpTransport() override;

  /// Binds the socket (non-blocking). False on failure (port in use, ...).
  [[nodiscard]] bool open();
  void close();

  // Transport contract.
  void send(sim::NodeId to, const Message& msg) override;
  void poll(std::vector<sim::Envelope<Message>>& out) override;
  void advance_round(sim::Round round) override;

  /// Drains the socket, feeding every datagram through on_datagram().
  void pump(std::int64_t now_us);

  /// Handles one raw datagram (socket-free; the alloc-budget tests call this
  /// directly). Returns false for malformed input.
  bool on_datagram(std::span<const std::uint8_t> bytes, std::int64_t now_us);

  /// Runs the reliable channels: due (re)transmissions and queued acks.
  void tick(std::int64_t now_us);

  /// Drops every pending reliable datagram tagged below `round` on every
  /// link — the runtime's give-up when the pacer forces an advance past a
  /// round whose frames could not be delivered (the simulator's permanent
  /// drop, made explicit).
  void cancel_stale(sim::Round round);

  /// Highest COMPLETED round announced by `peer` via heartbeat (-1 if
  /// never) — the pacer's input. Data frames do not move this: only a
  /// heartbeat proves the peer's round is fully acked and staged here.
  [[nodiscard]] sim::Round round_heard(sim::NodeId peer) const;

  [[nodiscard]] const Counters& counters() const { return counters_; }
  /// Aggregated reliable-channel counters over all peers.
  [[nodiscard]] ReliableLink::Counters link_totals() const;
  [[nodiscard]] const ReliableLink& link(sim::NodeId peer) const {
    return *links_[static_cast<std::size_t>(peer)];
  }
  [[nodiscard]] sim::Round round() const { return round_; }

 private:
  void transmit(sim::NodeId to, std::span<const std::uint8_t> bytes,
                std::uint32_t attempt, sim::Round send_round);
  void send_ack(sim::NodeId to, std::uint32_t seq);

  UdpConfig config_;
  int fd_ = -1;
  sim::Round round_ = 0;
  std::int64_t now_us_ = 0;  ///< last time seen by pump()/tick()
  std::vector<std::unique_ptr<ReliableLink>> links_;  ///< indexed by peer id
  std::vector<sim::Round> heard_;                     ///< indexed by peer id
  std::map<sim::Round, std::vector<sim::Envelope<Message>>> staged_;
  Counters counters_;

  // Recycled buffers (allocation-free steady state on the datagram paths).
  std::vector<std::uint8_t> encode_scratch_;
  std::vector<std::uint8_t> dgram_scratch_;
  std::vector<std::uint8_t> recv_scratch_;
  Message decode_scratch_;
};

}  // namespace reconfnet::transport
