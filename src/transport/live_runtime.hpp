// One live node: UDP transport + round pacer + protocol, composed into the
// process that tools/reconfnet_node.cpp runs (DESIGN.md §15).
//
// The loop is: pump the socket, feed heard completion announcements to the
// pacer, run the reliable channels, and announce our own round as complete
// once every reliable frame we sent in it is acked — peers advance on that
// announcement, which makes the pacer quorum a delivery barrier (live
// rounds see exactly the frames the synchronous simulator would deliver).
// When the pacer says advance, the next protocol round executes and its
// frames go out; a deadline-forced advance first cancels undelivered
// frames, reproducing the simulator's permanent drop. Crash events of the
// fault plan
// that name this node make the process exit at the scripted round —
// crash-stop is a real process death, the deploy script's SIGKILL is the
// backstop — and a hard round cap bounds every run: a deployment can
// degrade (fallbacks, evictions, isolated stragglers) but never wedge.
// After finishing, the node lingers briefly — heartbeating and serving
// retransmissions — so stragglers can still complete, then exits cleanly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/json.hpp"
#include "sim/types.hpp"
#include "transport/clock.hpp"
#include "transport/mangler.hpp"
#include "transport/node_protocol.hpp"
#include "transport/pacer.hpp"
#include "transport/udp.hpp"

namespace reconfnet::transport {

struct LiveConfig {
  sim::NodeId self = 0;
  int nodes = 64;
  int dimension = 3;
  std::uint64_t table_seed = 1;
  NodeProtocol::Config protocol{};
  PacerConfig pacer{};
  std::uint16_t base_port = 47000;
  std::uint32_t incarnation = 0;
  LinkConfig link{};
  std::string plan_spec = "none";
  std::uint64_t fault_salt = 0x7261ull;
  /// 0 = derive from epochs * max_attempts plus smoke and slack.
  sim::Round max_rounds = 0;
  std::int64_t linger_us = 500'000;
};

class LiveNodeRuntime {
 public:
  enum ExitCode : int {
    kFinished = 0,
    kRoundCapHit = 1,     ///< degraded but bounded — never a hang
    kCrashedPerPlan = 2,  ///< scripted crash-stop executed
    kBindFailed = 3,
  };

  LiveNodeRuntime(LiveConfig config, Clock* clock);

  /// Runs the node to completion; returns an ExitCode.
  int run();

  /// Per-node metrics for the deploy harvester, valid after run().
  [[nodiscard]] runtime::Json metrics_json(int exit_code) const;

  [[nodiscard]] const NodeProtocol& protocol() const { return *protocol_; }
  [[nodiscard]] sim::Round round() const { return round_; }

 private:
  void run_round(sim::Round round);
  /// True iff every reliable frame toward a non-evicted peer is acked.
  [[nodiscard]] bool sends_settled() const;
  /// (Re)announces `completed` as our highest finished round: immediately
  /// when it is news, and on a short cadence otherwise so a lost heartbeat
  /// only stalls peers briefly. Negative rounds are never announced.
  void announce(sim::Round completed, std::int64_t now_us);

  LiveConfig config_;
  Clock* clock_;
  std::unique_ptr<PacketMangler> mangler_;
  std::unique_ptr<NodeProtocol> protocol_;
  std::unique_ptr<UdpTransport> transport_;
  std::unique_ptr<RoundPacer> pacer_;
  sim::Round round_ = 0;
  std::vector<sim::NodeId> peers_;  ///< protocol_->peers(), refreshed per round
  sim::Round announced_ = -1;       ///< highest completion heartbeat sent
  std::int64_t last_heartbeat_us_ = 0;
  std::uint64_t heartbeats_sent_ = 0;
  std::uint64_t heartbeat_bits_ = 0;
  std::vector<sim::Envelope<Message>> inbox_;
  NodeProtocol::Outbox outbox_;
};

}  // namespace reconfnet::transport
