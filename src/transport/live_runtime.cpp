#include "transport/live_runtime.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "dos/group_table.hpp"
#include "support/rng.hpp"
#include "transport/scenario.hpp"

namespace reconfnet::transport {
namespace {

/// Idle poll interval between socket pumps while waiting on a deadline.
/// Scaled to the round budget: with many processes per core, spinning
/// tighter than the budget warrants only starves the peers we are waiting
/// for.
std::int64_t idle_sleep_us(const PacerConfig& pacer) {
  return std::clamp<std::int64_t>(pacer.round_budget_us / 32, 300, 2'000);
}

/// Re-announce cadence for completion heartbeats: a lost heartbeat must not
/// stall peers for a whole round budget, but re-broadcasting to every peer
/// too eagerly floods the loopback during deadline stalls (n processes x
/// n-1 peers) and drowns the very announcements that keep pacers fed.
std::int64_t heartbeat_resend_us(const PacerConfig& pacer) {
  return std::max<std::int64_t>(pacer.round_budget_us / 2, 2'500);
}

}  // namespace

LiveNodeRuntime::LiveNodeRuntime(LiveConfig config, Clock* clock)
    : config_(std::move(config)), clock_(clock) {
  // Every process derives the identical initial configuration from
  // (dimension, nodes, table_seed) — the only shared state a deployment
  // needs besides the command line.
  std::vector<sim::NodeId> ids;
  ids.reserve(static_cast<std::size_t>(config_.nodes));
  for (int i = 0; i < config_.nodes; ++i) {
    ids.push_back(static_cast<sim::NodeId>(i));
  }
  support::Rng table_rng(config_.table_seed);
  dos::GroupTable initial =
      dos::GroupTable::random(config_.dimension, ids, table_rng);

  protocol_ = std::make_unique<NodeProtocol>(config_.self, std::move(initial),
                                             config_.protocol);
  mangler_ = std::make_unique<PacketMangler>(
      parse_plan(config_.plan_spec, config_.nodes, protocol_->epoch_rounds()),
      config_.fault_salt);
  if (config_.max_rounds <= 0) {
    // Worst case: every epoch burns its full retry budget, plus the smoke
    // phase and slack for resync jitter. Past this the run is declared
    // degraded and the process exits — it never wedges.
    config_.max_rounds =
        static_cast<sim::Round>(config_.protocol.epochs *
                                    config_.protocol.max_attempts +
                                1) *
            protocol_->epoch_rounds() +
        config_.dimension + 64;
  }

  UdpConfig udp;
  udp.self = config_.self;
  udp.nodes = config_.nodes;
  udp.base_port = config_.base_port;
  udp.incarnation = config_.incarnation;
  udp.link = config_.link;
  udp.mangler = mangler_.get();
  transport_ = std::make_unique<UdpTransport>(udp);
  pacer_ = std::make_unique<RoundPacer>(config_.pacer, clock_->now_us());
}

void LiveNodeRuntime::run_round(sim::Round round) {
  transport_->advance_round(round);
  inbox_.clear();
  transport_->poll(inbox_);
  const std::vector<sim::NodeId> dead = pacer_->evicted_peers();
  outbox_.clear();
  protocol_->on_round(round, inbox_, outbox_, dead);
  for (auto& [to, msg] : outbox_) transport_->send(to, msg);
  // The peer set changes when an epoch commits a new table; re-declaring it
  // every round is cheap and keeps the pacer's liveness view current.
  peers_ = protocol_->peers();
  pacer_->set_peers(peers_);
}

bool LiveNodeRuntime::sends_settled() const {
  for (const sim::NodeId peer : peers_) {
    if (pacer_->evicted(peer)) continue;
    if (transport_->link(peer).pending() > 0) return false;
  }
  return true;
}

void LiveNodeRuntime::announce(sim::Round completed, std::int64_t now_us) {
  if (completed < 0) return;
  if (completed <= announced_ &&
      now_us - last_heartbeat_us_ < heartbeat_resend_us(config_.pacer)) {
    return;
  }
  Message beat;
  beat.kind = MsgKind::kHeartbeat;
  beat.round = completed;
  for (const sim::NodeId peer : peers_) {
    transport_->send(peer, beat);
    ++heartbeats_sent_;
    heartbeat_bits_ += 8ull * (kLinkHeaderBytes + encoded_bytes(beat));
  }
  announced_ = std::max(announced_, completed);
  last_heartbeat_us_ = now_us;
}

int LiveNodeRuntime::run() {
  if (!transport_->open()) return kBindFailed;
  pacer_->set_peers(protocol_->peers());
  pacer_->begin_round(0, clock_->now_us());
  transport_->pump(clock_->now_us());  // stamp the transport's clock
  run_round(0);

  while (!protocol_->finished()) {
    const std::int64_t now = clock_->now_us();
    // Scripted crash-stop: the process genuinely dies at the plan's round
    // (the deploy script's SIGKILL is the backstop for wedged processes).
    if (mangler_->is_crashed(config_.self, round_)) {
      transport_->close();
      return kCrashedPerPlan;
    }
    transport_->pump(now);
    for (const sim::NodeId peer : peers_) {
      pacer_->note_frame(peer, transport_->round_heard(peer));
    }
    transport_->tick(now);

    // Completion barrier: announce this round once our reliable sends are
    // all acked; until then re-announce the previous round as a liveness
    // signal and keep the early-advance quorum gated off.
    const bool settled = sends_settled();
    announce(settled ? round_ : round_ - 1, now);

    const RoundPacer::Tick tick = pacer_->tick(now, /*early_ok=*/settled);
    if (!tick.advance) {
      sleep_us(idle_sleep_us(config_.pacer));
      continue;
    }
    // Whatever could not be delivered in time is lost for good, exactly as
    // the simulator loses it (crashed receivers, partition windows,
    // deadline-expired rounds) — retrying into later rounds would only
    // produce late frames the receiver rejects.
    transport_->cancel_stale(tick.next_round);
    round_ = tick.next_round;
    if (round_ >= config_.max_rounds) {
      transport_->close();
      return kRoundCapHit;
    }
    run_round(round_);
    pacer_->begin_round(round_, clock_->now_us());
  }

  // Linger: peers may still need retransmissions of our final table
  // fragments, and our completion heartbeats keep their pacers moving.
  // Bounded, then a clean exit.
  const std::int64_t linger_end = clock_->now_us() + config_.linger_us;
  while (clock_->now_us() < linger_end) {
    const std::int64_t now = clock_->now_us();
    transport_->pump(now);
    transport_->tick(now);
    announce(sends_settled() ? round_ : round_ - 1, now);
    sleep_us(1'000);
  }
  transport_->close();
  return kFinished;
}

runtime::Json LiveNodeRuntime::metrics_json(int exit_code) const {
  const NodeProtocol::Metrics& m = protocol_->metrics();
  const UdpTransport::Counters& t = transport_->counters();
  const ReliableLink::Counters links = transport_->link_totals();
  const RoundPacer::Counters& p = pacer_->counters();

  runtime::Json out;
  out["schema"] = "reconfnet-node-v1";
  out["node"] = static_cast<std::int64_t>(config_.self);
  out["nodes"] = static_cast<std::int64_t>(config_.nodes);
  out["dimension"] = static_cast<std::int64_t>(config_.dimension);
  out["plan"] = canonical_plan_name(config_.plan_spec);
  out["exit_code"] = static_cast<std::int64_t>(exit_code);
  out["finished"] = m.finished;
  out["last_round"] = static_cast<std::int64_t>(round_);

  runtime::Json protocol;
  protocol["epochs_completed"] = m.epochs_completed;
  protocol["epochs_failed"] = m.epochs_failed;
  protocol["attempts"] = m.attempts;
  protocol["fallbacks"] = m.fallbacks;
  protocol["resyncs"] = m.resyncs;
  protocol["sample_shortages"] = m.sample_shortages;
  protocol["doomed_attempts"] = m.doomed_attempts;
  protocol["knowledge_epochs"] = m.knowledge_epochs;
  protocol["rounds_total"] = m.rounds_total;
  protocol["frames_sent"] = static_cast<std::int64_t>(m.frames_sent);
  protocol["frames_received"] = static_cast<std::int64_t>(m.frames_received);
  protocol["bits_sent"] = static_cast<std::int64_t>(m.bits_sent);
  protocol["bits_received"] = static_cast<std::int64_t>(m.bits_received);
  protocol["stale_frames"] = static_cast<std::int64_t>(m.stale_frames);
  protocol["lookup_ok"] = m.lookup_ok;
  out["protocol"] = std::move(protocol);

  runtime::Json transport;
  transport["datagrams_sent"] = static_cast<std::int64_t>(t.datagrams_sent);
  transport["datagrams_received"] =
      static_cast<std::int64_t>(t.datagrams_received);
  transport["mangled"] = static_cast<std::int64_t>(t.mangled);
  transport["send_errors"] = static_cast<std::int64_t>(t.send_errors);
  transport["acks_sent"] = static_cast<std::int64_t>(t.acks_sent);
  transport["late_frames"] = static_cast<std::int64_t>(t.late_frames);
  transport["decode_failures"] =
      static_cast<std::int64_t>(t.decode_failures);
  transport["heartbeats_received"] =
      static_cast<std::int64_t>(t.heartbeats_received);
  transport["heartbeats_sent"] = static_cast<std::int64_t>(heartbeats_sent_);
  transport["heartbeat_bits"] = static_cast<std::int64_t>(heartbeat_bits_);
  out["transport"] = std::move(transport);

  runtime::Json link;
  link["staged"] = static_cast<std::int64_t>(links.staged);
  link["retransmits"] = static_cast<std::int64_t>(links.retransmits);
  link["acked"] = static_cast<std::int64_t>(links.acked);
  link["abandoned"] = static_cast<std::int64_t>(links.abandoned);
  link["canceled"] = static_cast<std::int64_t>(links.canceled);
  link["delivered"] = static_cast<std::int64_t>(links.delivered);
  link["duplicates"] = static_cast<std::int64_t>(links.duplicates);
  link["stale_incarnation"] =
      static_cast<std::int64_t>(links.stale_incarnation);
  out["link"] = std::move(link);

  runtime::Json pacer;
  pacer["deadline_advances"] =
      static_cast<std::int64_t>(p.deadline_advances);
  pacer["early_advances"] = static_cast<std::int64_t>(p.early_advances);
  pacer["resyncs"] = static_cast<std::int64_t>(p.resyncs);
  pacer["evictions"] = static_cast<std::int64_t>(p.evictions);
  pacer["rejoins"] = static_cast<std::int64_t>(p.rejoins);
  out["pacer"] = std::move(pacer);

  return out;
}

}  // namespace reconfnet::transport
