#include "transport/scenario.hpp"

#include <stdexcept>
#include <vector>

namespace reconfnet::transport {
namespace {

std::vector<std::string> tokens(std::string_view spec) {
  std::vector<std::string> out;
  std::string current;
  for (const char c : spec) {
    if (c == ',' || c == '+') {
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
    } else if (c != ' ') {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

}  // namespace

fault::FaultPlan parse_plan(std::string_view spec, int nodes,
                            int epoch_rounds) {
  fault::FaultPlan plan;
  for (const std::string& token : tokens(spec)) {
    if (token == "none") continue;
    if (token == "kill2") {
      // Crash-stop two nodes from different thirds of the id space, early in
      // epoch 1 (the deployment must reconfigure around them).
      const auto third = static_cast<sim::NodeId>(nodes / 3);
      plan.with_crash({third, epoch_rounds + 3, -1});
      plan.with_crash({2 * third, epoch_rounds + 3, -1});
    } else if (token == "partition1") {
      // Id-threshold cut over early sampler rounds of epoch 0; heals well
      // before the reorganization rounds so the epoch can still commit.
      fault::PartitionEvent cut;
      cut.start = 2;
      cut.heal = 8;
      cut.id_below = static_cast<sim::NodeId>(nodes / 2);
      plan.with_partition(cut);
    } else if (token == "loss5") {
      plan.with_loss(0.05);
    } else {
      throw std::invalid_argument("unknown plan token: " + token);
    }
  }
  return plan;
}

std::string canonical_plan_name(std::string_view spec) {
  const auto parts = tokens(spec);
  if (parts.empty()) return "none";
  std::string out;
  for (const std::string& token : parts) {
    if (!out.empty()) out.push_back('+');
    out += token;
  }
  return out;
}

}  // namespace reconfnet::transport
