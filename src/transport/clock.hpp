// Time source seam for the live transport (DESIGN.md §15).
//
// The determinism contract (RNL003) bans wall-clock reads in src/: every
// result-producing computation must be a function of the seed. The live
// transport genuinely needs time — round deadlines, retransmission timers —
// so the clock is isolated behind this interface: MonotonicClock (the one
// sanctioned wall-clock site, implemented in clock.cpp and carved out in
// tools/lint/layers.toml) feeds the real deployment, while FakeClock drives
// every test and keeps the RoundPacer / ReliableLink state machines pure
// functions of (inputs, now_us).
#pragma once

#include <cstdint>

namespace reconfnet::transport {

/// Microsecond monotonic time source. The origin is arbitrary; only
/// differences are meaningful.
class Clock {
 public:
  Clock() = default;
  Clock(const Clock&) = delete;
  Clock& operator=(const Clock&) = delete;
  Clock(Clock&&) = delete;
  Clock& operator=(Clock&&) = delete;
  virtual ~Clock() = default;

  [[nodiscard]] virtual std::int64_t now_us() = 0;
};

/// Deterministic clock for tests: time moves only when told to.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::int64_t start_us = 0) : now_(start_us) {}

  [[nodiscard]] std::int64_t now_us() override { return now_; }
  void advance_us(std::int64_t delta) { now_ += delta; }
  void set_us(std::int64_t now) { now_ = now; }

 private:
  std::int64_t now_ = 0;
};

/// CLOCK_MONOTONIC-backed clock for the live deployment.
class MonotonicClock final : public Clock {
 public:
  [[nodiscard]] std::int64_t now_us() override;
};

/// Sleeps the calling thread for at most `us` microseconds (live pacing
/// between round deadlines; never called from deterministic code).
void sleep_us(std::int64_t us);

}  // namespace reconfnet::transport
