#include "transport/reliable_link.hpp"

#include <algorithm>

namespace reconfnet::transport {
namespace {

void put_u16(std::uint8_t* out, std::uint16_t value) {
  out[0] = static_cast<std::uint8_t>(value);
  out[1] = static_cast<std::uint8_t>(value >> 8);
}

void put_u32(std::uint8_t* out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

void put_u64(std::uint8_t* out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

std::uint16_t get_u16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>(in[0] |
                                    (static_cast<std::uint16_t>(in[1]) << 8));
}

std::uint32_t get_u32(const std::uint8_t* in) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  }
  return value;
}

std::uint64_t get_u64(const std::uint8_t* in) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return value;
}

}  // namespace

void encode_link_header(const LinkHeader& header, std::uint8_t* out) {
  put_u16(out, kLinkMagic);
  out[2] = kLinkVersion;
  out[3] = static_cast<std::uint8_t>(header.op);
  put_u64(out + 4, header.from);
  put_u32(out + 12, header.incarnation);
  put_u32(out + 16, header.seq);
}

bool decode_link_header(std::span<const std::uint8_t> bytes,
                        LinkHeader& header) {
  if (bytes.size() < kLinkHeaderBytes) return false;
  if (get_u16(bytes.data()) != kLinkMagic) return false;
  if (bytes[2] != kLinkVersion) return false;
  if (bytes[3] > static_cast<std::uint8_t>(LinkOp::kAck)) return false;
  header.op = static_cast<LinkOp>(bytes[3]);
  header.from = get_u64(bytes.data() + 4);
  header.incarnation = get_u32(bytes.data() + 12);
  header.seq = get_u32(bytes.data() + 16);
  return true;
}

std::uint32_t ReliableLink::stage(std::span<const std::uint8_t> payload,
                                  std::int64_t now_us, std::int64_t tag) {
  const std::uint32_t seq = next_seq_++;
  Pending entry;
  entry.tag = tag;
  entry.datagram.resize(kLinkHeaderBytes + payload.size());
  LinkHeader header;
  header.op = LinkOp::kReliable;
  header.from = self_;
  header.incarnation = incarnation_;
  header.seq = seq;
  encode_link_header(header, entry.datagram.data());
  std::memcpy(entry.datagram.data() + kLinkHeaderBytes, payload.data(),
              payload.size());
  entry.due_us = now_us;  // first transmission at the next for_due
  entry.timeout_us = config_.initial_timeout_us;
  pending_.emplace(seq, std::move(entry));
  ++counters_.staged;
  return seq;
}

void ReliableLink::on_ack(std::uint32_t seq, std::uint32_t incarnation) {
  if (incarnation != incarnation_) {
    // An ack addressed to a previous life of this process; our fresh
    // sequence space must not be consumed by it.
    ++counters_.stale_incarnation;
    return;
  }
  if (pending_.erase(seq) > 0) ++counters_.acked;
}

std::size_t ReliableLink::cancel_stale(std::int64_t before_tag) {
  std::size_t dropped = 0;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.tag < before_tag) {
      it = pending_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  counters_.canceled += dropped;
  return dropped;
}

bool ReliableLink::on_data(std::uint32_t seq, std::uint32_t incarnation) {
  if (incarnation < peer_incarnation_) {
    ++counters_.stale_incarnation;
    return false;  // no ack: the sender of this datagram is gone
  }
  if (incarnation > peer_incarnation_) {
    // The peer restarted: new sequence space, fresh dedup state.
    peer_incarnation_ = incarnation;
    floor_ = 0;
    above_floor_.clear();
  }
  ack_queue_.push_back(seq);
  if (seq <= floor_ || above_floor_.count(seq) > 0) {
    ++counters_.duplicates;
    return false;
  }
  above_floor_.insert(seq);
  while (above_floor_.count(floor_ + 1) > 0) {
    above_floor_.erase(floor_ + 1);
    ++floor_;
  }
  ++counters_.delivered;
  return true;
}

}  // namespace reconfnet::transport
