#include "transport/pacer.hpp"

#include <algorithm>
#include <utility>

namespace reconfnet::transport {

RoundPacer::RoundPacer(PacerConfig config, std::int64_t now_us)
    : config_(config) {
  begin_round(0, now_us);
}

void RoundPacer::set_peers(std::span<const sim::NodeId> peers) {
  std::vector<Peer> fresh;
  fresh.reserve(peers.size());
  for (const sim::NodeId id : peers) {
    Peer entry;
    entry.id = id;
    if (const Peer* old = find(id)) entry = *old;
    fresh.push_back(entry);
  }
  std::sort(fresh.begin(), fresh.end(),
            [](const Peer& a, const Peer& b) { return a.id < b.id; });
  fresh.erase(std::unique(fresh.begin(), fresh.end(),
                          [](const Peer& a, const Peer& b) {
                            return a.id == b.id;
                          }),
              fresh.end());
  peers_ = std::move(fresh);
}

void RoundPacer::note_frame(sim::NodeId peer, sim::Round peer_round) {
  Peer* entry = find(peer);
  if (entry == nullptr) return;
  entry->last_heard = std::max(entry->last_heard, peer_round);
  // Rejoin: an evicted peer that announces a current round was starved, not
  // dead (scheduling stalls, a healed partition). Crashed nodes can never
  // produce a fresh announcement, so eviction stays permanent for them while
  // a wrongly evicted live peer heals itself. Stale ghosts (older rounds)
  // stay evicted.
  if (entry->evicted && entry->last_heard >= round_ - 1) {
    entry->evicted = false;
    entry->misses = 0;
    ++counters_.rejoins;
  }
}

RoundPacer::Tick RoundPacer::tick(std::int64_t now_us, bool early_ok) {
  Tick result;
  // Resync: somebody live is past the horizon — we are the straggler. Jump
  // to the highest round heard instead of paying one deadline per round.
  sim::Round max_heard = -1;
  for (const Peer& peer : peers_) {
    if (!peer.evicted) max_heard = std::max(max_heard, peer.last_heard);
  }
  if (max_heard > round_ + config_.resync_horizon) {
    ++counters_.resyncs;
    result.advance = true;
    result.resync = true;
    result.next_round = max_heard;
    return result;
  }

  // Early advance: every live peer announced the current round as complete
  // (their frames for it are provably staged here). Suppressed while our own
  // sends are unacked — we must not desert a round our peers are still
  // waiting to receive.
  if (early_ok) {
    bool all_caught_up = true;
    for (const Peer& peer : peers_) {
      if (!peer.evicted && peer.last_heard < round_) {
        all_caught_up = false;
        break;
      }
    }
    if (all_caught_up && !peers_.empty()) {
      ++counters_.early_advances;
      result.advance = true;
      result.next_round = round_ + 1;
      return result;
    }
  }

  if (now_us < deadline_us_) return result;  // keep waiting

  // Deadline: advance anyway. A live-but-stalled peer keeps re-announcing
  // the previous round, so only peers MORE than the current round behind —
  // silent across a whole deadline — are charged a miss.
  ++counters_.deadline_advances;
  for (Peer& peer : peers_) {
    if (peer.evicted) continue;
    if (peer.last_heard >= round_ - 1) {
      peer.misses = 0;
      continue;
    }
    ++peer.misses;
    if (peer.misses >= config_.evict_after) {
      peer.evicted = true;
      ++counters_.evictions;
    }
  }
  result.advance = true;
  result.next_round = round_ + 1;
  return result;
}

void RoundPacer::begin_round(sim::Round round, std::int64_t now_us) {
  round_ = round;
  deadline_us_ = now_us + config_.round_budget_us +
                 (round == 0 ? config_.startup_grace_us : 0);
  // A peer that caught up clears its miss streak at the boundary (the
  // deadline path above only charges the ones more than a round behind).
  for (Peer& peer : peers_) {
    if (!peer.evicted && peer.last_heard >= round_ - 2) peer.misses = 0;
  }
}

bool RoundPacer::suspected(sim::NodeId peer) const {
  const Peer* entry = find(peer);
  return entry != nullptr && !entry->evicted &&
         entry->misses >= config_.suspect_after;
}

bool RoundPacer::evicted(sim::NodeId peer) const {
  const Peer* entry = find(peer);
  return entry != nullptr && entry->evicted;
}

std::vector<sim::NodeId> RoundPacer::evicted_peers() const {
  std::vector<sim::NodeId> out;
  for (const Peer& peer : peers_) {
    if (peer.evicted) out.push_back(peer.id);
  }
  return out;
}

bool RoundPacer::group_silent(std::span<const sim::NodeId> members) const {
  bool tracked_any = false;
  for (const sim::NodeId id : members) {
    const Peer* entry = find(id);
    if (entry == nullptr) continue;
    tracked_any = true;
    if (!entry->evicted) return false;
  }
  return tracked_any;
}

const RoundPacer::Peer* RoundPacer::find(sim::NodeId id) const {
  const auto it = std::lower_bound(
      peers_.begin(), peers_.end(), id,
      [](const Peer& peer, sim::NodeId key) { return peer.id < key; });
  return it != peers_.end() && it->id == id ? &*it : nullptr;
}

RoundPacer::Peer* RoundPacer::find(sim::NodeId id) {
  return const_cast<Peer*>(std::as_const(*this).find(id));
}

}  // namespace reconfnet::transport
