// The per-node transport seam of the live backend (DESIGN.md §15).
//
// A NodeProtocol never touches sockets or the simulator bus directly; it
// talks to a Transport, which carries already-encoded protocol frames
// between nodes. Two implementations exist:
//
//   * InprocTransport (inproc.hpp): endpoints of an in-process hub wrapping
//     sim::Bus — lockstep rounds, deterministic delivery, the reference
//     semantics the live backend is validated against. Frames still travel
//     through the wire codec, so the encoder/decoder is exercised on every
//     message in every test that uses the hub.
//   * UdpTransport (udp.hpp): non-blocking UDP datagrams on localhost, with
//     per-peer reliable channels for at-most-once delivery of protocol
//     frames and round-tagged staging that reproduces the bus's
//     "sent in round r, delivered in round r + 1" contract.
//
// The contract mirrors one bus round: the owner calls send() during its
// round r (frames are tagged with r by the protocol), advance_round(r + 1)
// at the boundary, and poll() to collect everything sent to it in round r.
#pragma once

#include <vector>

#include "sim/bus.hpp"
#include "sim/types.hpp"
#include "transport/wire.hpp"

namespace reconfnet::transport {

class Transport {
 public:
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  virtual ~Transport() = default;

  /// Queues one protocol frame to `to`. The frame's round/epoch/attempt tags
  /// must already be set (NodeProtocol::emit does).
  virtual void send(sim::NodeId to, const Message& msg) = 0;

  /// Appends every frame deliverable at the current round (sent in the
  /// previous one) to `out`.
  virtual void poll(std::vector<sim::Envelope<Message>>& out) = 0;

  /// Moves the delivery cursor to `round`.
  virtual void advance_round(sim::Round round) = 0;
};

}  // namespace reconfnet::transport
