// Deterministic little-endian wire codec for the Section 5 node-level
// protocol (DESIGN.md §15).
//
// One Message struct covers every frame the per-node protocol exchanges; the
// codec writes a fixed header (magic, version, kind, sender round, epoch,
// attempt) followed by a kind-specific body. Encoding is a pure function of
// the Message — no padding, no host-order leaks — so the same Message
// serializes to the same bytes in every process, and the frame bits charged
// to the communication-work accounting (8 * encoded_bytes) agree between the
// in-process and the UDP transport by construction.
//
// The frame layout is pinned in tools/protocheck/protocol.toml (transport.*
// constants); changing a field width here without updating the spec fails
// the protocheck gate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/types.hpp"

namespace reconfnet::transport {

// Frame-format constants, pinned by tools/protocheck/protocol.toml.
inline constexpr std::uint16_t kWireMagic = 0x5243;  // "RC"
inline constexpr std::uint8_t kWireVersion = 1;
/// Frame header: magic(2) + version(1) + kind(1) + sender round(8) +
/// epoch(8) + attempt(4) + payload length(4).
inline constexpr std::size_t kFrameHeaderBytes = 28;
inline constexpr std::uint64_t kFrameHeaderBits = kFrameHeaderBytes * 8;
/// One supernode-level sampler message on the wire: src(8) + dest(8) +
/// seq(4) + index(4) + is_request(1) + request(8 + 4) + response(8 + 4 + 1).
inline constexpr std::size_t kSuperMsgBytes = 50;

enum class MsgKind : std::uint8_t {
  kHeartbeat = 0,       ///< liveness + epoch position (pacer input)
  kCandidate = 1,       ///< sim round: candidate state + supernode outbox
  kStateBroadcast = 2,  ///< sync round: adopted state rebroadcast
  kSuper = 3,           ///< one forwarded supernode-level sampler message
  kAssign = 4,          ///< reorg A: node -> sampled supernode
  kNewGroup = 5,        ///< reorg B: fresh membership of one supernode
  kNeighborGroup = 6,   ///< reorg C: neighbor group forwarded to new members
  kTableFrag = 7,       ///< all-gather: partial new group table
  kCommitVote = 8,      ///< commit round: table-completeness vote
  kLookup = 9,          ///< DHT smoke: greedy bit-fixing lookup
  kLookupReply = 10,    ///< DHT smoke: home-group answer to the origin
};

/// A replicated sampler snapshot on the wire: the primitive-round counter
/// plus the raw multiset blocks. The receiver reconstructs the
/// HypercubeSamplerCore from (dimension, supernode, schedule) — all derivable
/// from the shared group table — via restore_blocks().
struct SamplerState {
  std::int32_t seq = 0;
  std::vector<std::vector<std::uint64_t>> blocks;
};

/// Mirror of dos/node_sim.cpp's supernode-level sampler message.
struct SuperMsg {
  std::uint64_t src = 0;
  std::uint64_t dest = 0;
  std::int32_t seq = 0;
  std::uint32_t index = 0;
  bool is_request = false;
  std::uint64_t req_requester = 0;
  std::int32_t req_j = 0;
  std::uint64_t resp_vertex = 0;
  std::int32_t resp_j = 0;
  bool resp_ok = false;
};

/// One (supernode, members) entry of the all-gathered new group table.
struct TableEntry {
  std::uint64_t supernode = 0;
  std::vector<sim::NodeId> members;
};

/// Every protocol frame. `kind` selects which fields are meaningful (and
/// which the codec serializes); the rest stay default-initialized.
struct Message {
  MsgKind kind = MsgKind::kHeartbeat;
  sim::Round round = 0;       ///< sender's round when the frame was sent
  std::int64_t epoch = 0;     ///< reconfiguration epoch the frame belongs to
  std::int32_t attempt = 0;   ///< retry attempt within the epoch

  std::int64_t epoch_start = 0;           ///< heartbeat: epoch's first round
  std::uint64_t supernode = 0;            ///< state/assign/group/vote frames
  SamplerState state;                     ///< candidate / broadcast
  std::vector<SuperMsg> outbox;           ///< candidate
  SuperMsg super{};                       ///< super
  sim::NodeId assigned = sim::kNoNode;    ///< assign
  std::vector<sim::NodeId> group;         ///< new-group / neighbor-group
  std::vector<TableEntry> table;          ///< table fragment
  bool complete = false;                  ///< commit vote
  std::uint64_t key = 0;                  ///< lookup / reply
  sim::NodeId origin = sim::kNoNode;      ///< lookup / reply

  void clear();
};

/// Exact serialized size of `msg` in bytes (header included) without
/// encoding. Used for communication-work accounting on both transports.
[[nodiscard]] std::size_t encoded_bytes(const Message& msg);

/// Serializes `msg` into `out` (cleared first; capacity is recycled, so the
/// steady-state path allocates nothing once warm).
void encode(const Message& msg, std::vector<std::uint8_t>& out);

/// Parses one frame into `msg` (cleared first; nested vectors recycle their
/// capacity). Returns false on any malformed input — short buffer, bad
/// magic/version, truncated body, trailing bytes — leaving `msg`
/// unspecified but valid.
[[nodiscard]] bool decode(std::span<const std::uint8_t> bytes, Message& msg);

}  // namespace reconfnet::transport
