#!/usr/bin/env python3
"""Compare two google-benchmark JSON result files by real_time.

Used by CI as a *non-blocking* drift report: the committed baseline
(bench/baselines/BENCH_micro.json) was recorded on one machine, CI runs on
another, so absolute times are only comparable up to a large noise factor.
The default tolerance (--tolerance 0.5, i.e. a 1.5x slowdown) is therefore
deliberately loose, and the exit code is 0 unless --fail-on-regression is
passed.

Usage:
  tools/benchdiff.py BASELINE CURRENT [--tolerance 0.5]
                     [--fail-on-regression]

Exit codes:
  0  compared cleanly (regressions are reported but not fatal by default)
  1  --fail-on-regression was given and at least one benchmark regressed
  2  an input file is missing or not google-benchmark JSON
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Returns {name: (real_time, time_unit)} for the iteration entries."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"benchdiff: cannot read {path}: {error}", file=sys.stderr)
        raise SystemExit(2)
    if "benchmarks" not in data:
        print(f"benchdiff: {path} has no 'benchmarks' array "
              "(not google-benchmark JSON?)", file=sys.stderr)
        raise SystemExit(2)
    out = {}
    for entry in data["benchmarks"]:
        # Skip aggregate rows (mean/median/stddev) when repetitions are on;
        # the per-iteration rows carry run_type == 'iteration' (or no
        # run_type at all in older library versions).
        if entry.get("run_type", "iteration") != "iteration":
            continue
        out[entry["name"]] = (float(entry["real_time"]),
                              entry.get("time_unit", "ns"))
    return out


def main():
    parser = argparse.ArgumentParser(
        description="google-benchmark real_time comparator")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed fractional slowdown before a benchmark "
                             "counts as regressed (default 0.5 = 1.5x)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when any benchmark regressed")
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    curr = load_benchmarks(args.current)

    shared = sorted(set(base) & set(curr))
    only_base = sorted(set(base) - set(curr))
    only_curr = sorted(set(curr) - set(base))

    regressed = []
    width = max((len(name) for name in shared), default=0)
    print(f"benchdiff: {args.baseline} -> {args.current} "
          f"(tolerance {args.tolerance:+.0%})")
    for name in shared:
        base_time, base_unit = base[name]
        curr_time, curr_unit = curr[name]
        if base_unit != curr_unit:
            print(f"  {name:<{width}}  UNIT MISMATCH "
                  f"({base_unit} vs {curr_unit})")
            regressed.append(name)
            continue
        ratio = (curr_time / base_time) if base_time > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.tolerance:
            flag = "  REGRESSED"
            regressed.append(name)
        elif ratio < 1.0 - args.tolerance:
            flag = "  improved"
        print(f"  {name:<{width}}  {base_time:>12.1f} -> {curr_time:>12.1f} "
              f"{base_unit}  ({ratio:5.2f}x){flag}")
    for name in only_base:
        print(f"  {name}: missing from current run")
    for name in only_curr:
        print(f"  {name}: new (no baseline)")

    if not shared:
        print("benchdiff: no overlapping benchmarks to compare")
    if regressed:
        print(f"benchdiff: {len(regressed)} of {len(shared)} benchmarks "
              f"exceeded the tolerance: {', '.join(regressed)}")
        if args.fail_on_regression:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
