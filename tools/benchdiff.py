#!/usr/bin/env python3
"""Compare two benchmark JSON result files.

Two input formats are auto-detected (both files must share one):

* google-benchmark JSON (top-level "benchmarks" array): compares real_time
  per benchmark. Wall times recorded on different machines are only
  comparable up to a large noise factor, so the default tolerance is loose
  (--tolerance 0.5, i.e. a 1.5x slowdown) and callers gating CI should pick
  an even looser one (the bench-smoke job uses 4.0).

* reconfnet-bench-v1 (top-level "schema" key, written by bench/common.hpp):
  compares every (group, metric) series over the labels both files contain.
  These are deterministic simulation outputs, not wall times, so the default
  comparison is EXACT; pass --tolerance to allow a relative drift on the
  series means instead (useful across libm versions, whose pow() ulps can
  flip individual Zipfian draws). Labels present in only one file are
  reported but never fatal, which lets a --smoke run (a prefix of the full
  cell list with identical per-cell seeds) be diffed against a full-run
  baseline.

Usage:
  tools/benchdiff.py BASELINE CURRENT [--tolerance F] [--fail-on-regression]

Exit codes:
  0  compared cleanly (regressions are reported but not fatal by default)
  1  --fail-on-regression was given and at least one entry regressed, or
     it was given and the files share no entries (a gate that compares
     nothing must not pass)
  2  an input file is missing, malformed, or the formats differ
"""

import argparse
import json
import os
import sys


def load(path, role):
    """Returns ("gbench", {name: (real_time, unit)}) or
    ("bench-v1", {(group, metric): [values...]})."""
    if not os.path.exists(path):
        print(f"benchdiff: {role} file {path} does not exist"
              + (" — record and commit it before enabling a gate on it"
                 if role == "baseline" else ""), file=sys.stderr)
        raise SystemExit(2)
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"benchdiff: cannot read {role} {path}: {error}",
              file=sys.stderr)
        raise SystemExit(2)
    if data.get("schema") == "reconfnet-bench-v1":
        out = {}
        for entry in data.get("metrics", []):
            out[(entry["group"], entry["name"])] = [
                float(v) for v in entry["values"]]
        return "bench-v1", out
    if "benchmarks" in data:
        out = {}
        for entry in data["benchmarks"]:
            # Skip aggregate rows (mean/median/stddev) when repetitions are
            # on; the per-iteration rows carry run_type == 'iteration' (or no
            # run_type at all in older library versions).
            if entry.get("run_type", "iteration") != "iteration":
                continue
            out[entry["name"]] = (float(entry["real_time"]),
                                  entry.get("time_unit", "ns"))
        return "gbench", out
    print(f"benchdiff: {path} is neither google-benchmark JSON nor "
          "reconfnet-bench-v1", file=sys.stderr)
    raise SystemExit(2)


def diff_gbench(base, curr, tolerance):
    """Real-time ratios; returns the list of regressed benchmark names."""
    shared = sorted(set(base) & set(curr))
    regressed = []
    width = max((len(name) for name in shared), default=0)
    for name in shared:
        base_time, base_unit = base[name]
        curr_time, curr_unit = curr[name]
        if base_unit != curr_unit:
            print(f"  {name:<{width}}  UNIT MISMATCH "
                  f"({base_unit} vs {curr_unit})")
            regressed.append(name)
            continue
        ratio = (curr_time / base_time) if base_time > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + tolerance:
            flag = "  REGRESSED"
            regressed.append(name)
        elif ratio < 1.0 - tolerance:
            flag = "  improved"
        print(f"  {name:<{width}}  {base_time:>12.1f} -> {curr_time:>12.1f} "
              f"{base_unit}  ({ratio:5.2f}x){flag}")
    return shared, regressed


def diff_bench_v1(base, curr, tolerance):
    """Exact (or mean-relative) series comparison; returns regressed keys."""
    shared = sorted(set(base) & set(curr))
    regressed = []
    matched = 0
    for key in shared:
        label = f"{key[0]} :: {key[1]}"
        base_values, curr_values = base[key], curr[key]
        if tolerance is None:
            if base_values == curr_values:
                matched += 1
                continue
            print(f"  {label}  DIFFERS {base_values} -> {curr_values}")
            regressed.append(label)
            continue
        base_mean = sum(base_values) / len(base_values) if base_values else 0.0
        curr_mean = sum(curr_values) / len(curr_values) if curr_values else 0.0
        scale = max(abs(base_mean), abs(curr_mean))
        drift = abs(curr_mean - base_mean)
        if drift <= tolerance * scale:
            matched += 1
            continue
        print(f"  {label}  DRIFTED {base_mean:g} -> {curr_mean:g} "
              f"(|d| = {drift:g} > {tolerance:.0%} of {scale:g})")
        regressed.append(label)
    mode = "exactly" if tolerance is None else f"within {tolerance:.0%}"
    print(f"  {matched} of {len(shared)} shared series matched {mode}")
    return shared, regressed


def main():
    parser = argparse.ArgumentParser(description="benchmark JSON comparator")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed fractional drift; default 0.5 for "
                             "google-benchmark real_time, exact comparison "
                             "for reconfnet-bench-v1 metrics")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when any entry regressed")
    args = parser.parse_args()

    base_kind, base = load(args.baseline, "baseline")
    curr_kind, curr = load(args.current, "current")
    if base_kind != curr_kind:
        print(f"benchdiff: format mismatch ({base_kind} vs {curr_kind})",
              file=sys.stderr)
        raise SystemExit(2)

    print(f"benchdiff [{base_kind}]: {args.baseline} -> {args.current}")
    if base_kind == "gbench":
        tolerance = 0.5 if args.tolerance is None else args.tolerance
        shared, regressed = diff_gbench(base, curr, tolerance)
    else:
        shared, regressed = diff_bench_v1(base, curr, args.tolerance)

    for name in sorted(set(base) - set(curr)):
        print(f"  {name}: missing from current run")
    for name in sorted(set(curr) - set(base)):
        print(f"  {name}: new (no baseline)")

    if not shared:
        print("benchdiff: no overlapping entries to compare")
        if args.fail_on_regression:
            print("benchdiff: refusing to pass a regression gate that "
                  "compared nothing", file=sys.stderr)
            return 1
    if regressed:
        print(f"benchdiff: {len(regressed)} of {len(shared)} entries "
              "exceeded the tolerance")
        if args.fail_on_regression:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
