#!/usr/bin/env bash
# Shared bootstrap-compile helper for the zero-dependency checkers
# (reconfnet_lint, reconfnet_protocheck). Resolves a tool binary: prefer the
# configured build tree (building the target there first if it is missing),
# otherwise compile the listed sources directly with ${CXX:-c++} so the gates
# run everywhere, including toolchain-only containers with no build tree.
#
# Prints the binary path on stdout; all diagnostics go to stderr.
#
# Usage:
#   tools/bootstrap_tool.sh TOOL SUBDIR BUILD_DIR DEP...
#
#   TOOL       binary and CMake target name (e.g. reconfnet_lint)
#   SUBDIR     build-tree subdirectory holding the binary (e.g. tools/lint)
#   BUILD_DIR  configured build tree, or "" to force a bootstrap compile
#   DEP...     files the bootstrap binary depends on; entries ending in .cpp
#              are compiled, the rest (headers) only feed the staleness check
#
# Environment:
#   CXX        compiler for the bootstrap build (default: c++)
set -euo pipefail

tool="$1"
subdir="$2"
build_dir="$3"
shift 3

if [[ -n "${build_dir}" && -f "${build_dir}/CMakeCache.txt" ]]; then
  bin="${build_dir}/${subdir}/${tool}"
  if [[ ! -x "${bin}" ]]; then
    echo "bootstrap_tool: building ${tool} in ${build_dir}" >&2
    # A stale tree configured before the tool existed has no such target;
    # fall through to the bootstrap compile instead of failing.
    cmake --build "${build_dir}" --target "${tool}" -- -j "$(nproc)" \
      > /dev/null 2>&1 || true
  fi
  if [[ -x "${bin}" ]]; then
    echo "${bin}"
    exit 0
  fi
  echo "bootstrap_tool: ${build_dir} has no ${tool}; bootstrapping" >&2
fi

bin="build/${tool}-bootstrap/${tool}"
stale=0
if [[ ! -x "${bin}" ]]; then
  stale=1
else
  for dep in "$@"; do
    if [[ "${dep}" -nt "${bin}" ]]; then
      stale=1
      break
    fi
  done
fi
if [[ "${stale}" -eq 1 ]]; then
  echo "bootstrap_tool: compiling ${bin}" >&2
  mkdir -p "$(dirname "${bin}")"
  declare -a sources=()
  for dep in "$@"; do
    [[ "${dep}" == *.cpp ]] && sources+=("${dep}")
  done
  "${CXX:-c++}" -std=c++20 -O1 "${sources[@]}" -o "${bin}"
fi
echo "${bin}"
