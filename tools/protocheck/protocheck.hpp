// reconfnet_protocheck — protocol-conformance checker for the reconfnet tree.
//
// Every theorem the repo reproduces (Theorems 4-7) is a statement about
// messages: who may send what in which round-phase, what each message costs
// in bits (the paper's communication-work measure, Section 1.1), and how the
// blocking rule filters delivery. reconfnet_lint (tools/lint/) enforces
// token-level properties; this tool closes the gap between the paper's
// protocol and the code by checking the sources against a machine-readable
// spec, tools/protocheck/protocol.toml:
//
//   [[message]]  one entry per payload struct: where it is defined, which
//                files may send/consume it, and the legal `bits` expressions
//                at Bus::send call sites (spelled exactly as in the code).
//   [[constant]] a named protocol quantity pinned as a token sequence that
//                must appear verbatim in a given file (id widths, Equation-1
//                envelope, group-size thresholds) — spec<->code drift fails.
//   [options]    `roots`: path prefixes walked by the tree gate.
//   [allow]      rule id -> path prefixes where the rule is off wholesale.
//
// The checker extracts the actual send/handle graph from the sources — every
// `Bus<Msg>` binding, every `.send(from, to, payload, bits)` call with its
// bits expression, every `.inbox(...)` consumption, every `.step(...)`
// (including step-alias lambdas such as `step_bus` that wrap `bus.step`) —
// and reports:
//
//   RNP301  Bus<T> binding whose message type the spec does not declare
//   RNP302  spec message never sent anywhere in the tree (orphan)
//   RNP303  spec message never consumed via inbox() (orphan)
//   RNP304  send site in a file the spec does not list as a sender
//   RNP305  inbox site in a file the spec does not list as a receiver
//   RNP306  send-site bits expression not among the spec's formulas
//   RNP307  payload member that cannot go on a wire deterministically:
//           raw/smart pointer, unordered container, or floating point
//           (checked transitively through member structs)
//   RNP308  send after the bus's final step — the round-phase skeleton is
//           receive -> compute -> send -> step, so the message is never
//           delivered (a never-stepped bus flags every send)
//   RNP309  pinned constant's token sequence missing from its file
//   RNP310  payload struct not found in the file the spec declares
//   RNP390  malformed reconfnet-protocheck suppression comment
//
// Suppressions: `// reconfnet-protocheck: allow(RNP307) <reason>` on the
// offending line or alone on the line above. Findings anchored to the spec
// file itself (RNP302/303/309/310) are fixed by editing the spec or the
// code, or carved out via [allow].
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "../lint/textscan.hpp"

namespace reconfnet::protocheck {

using textscan::Finding;
using textscan::SourceFile;
using textscan::strip_source;

/// One [[message]] entry: a payload struct and its wire contract.
struct MessageSpec {
  std::string name;         ///< payload struct name
  std::string file;         ///< repo-relative file defining the struct
  std::string subsystem;    ///< sampling | churn | dos | estimate | ...
  std::vector<std::string> senders;    ///< path prefixes allowed to send
  std::vector<std::string> receivers;  ///< path prefixes allowed to consume
  std::vector<std::string> bits;  ///< legal bits expressions, as written
  std::size_t line = 0;           ///< line in protocol.toml
};

/// One [[constant]] entry: a token sequence pinned to a file.
struct ConstantSpec {
  std::string name;
  std::string file;
  std::string code;  ///< must appear in `file` as a token subsequence
  std::size_t line = 0;
};

struct Spec {
  std::vector<std::string> roots = {"src/"};
  std::vector<MessageSpec> messages;
  std::vector<ConstantSpec> constants;
  /// rule id -> path prefixes where the rule is switched off wholesale.
  std::map<std::string, std::vector<std::string>> allow;
};

/// Parses protocol.toml. Returns false and fills `error` on malformed input
/// (unknown sections/keys, missing required fields).
bool parse_spec(const std::string& text, Spec& spec, std::string& error);

/// The static rule catalogue (--list-rules output).
const std::vector<textscan::RuleInfo>& rules();

class Driver {
 public:
  /// `spec_path` is where spec-anchored findings (RNP302/303/309/310) are
  /// reported; it defaults to the canonical location.
  explicit Driver(Spec spec,
                  std::string spec_path = "tools/protocheck/protocol.toml");

  /// Registers a file for the run. Paths must be repo-relative with '/'
  /// separators; contents are stripped immediately.
  void add_file(const std::string& path, const std::string& content);

  /// Partial runs (an explicit file list instead of the full tree) skip the
  /// whole-tree rules: the orphan checks (RNP302/303) and the constant and
  /// payload-location pins for files that were not registered.
  void set_partial(bool partial);

  struct Result {
    std::vector<Finding> findings;  // sorted by (file, line, rule)
    /// Findings dropped by an inline allow or an [allow] carve-out, kept for
    /// SARIF suppression records.
    std::vector<Finding> suppressed_findings;
    /// Inline suppression comments whose rule no longer fires on the line
    /// they cover (the --stale-suppressions report).
    std::vector<textscan::StaleSuppression> stale;
    std::size_t files_checked = 0;
    std::size_t suppressed = 0;
  };

  /// Runs every rule over the registered files. Deterministic: files are
  /// processed in sorted path order and findings are sorted.
  Result run();

 private:
  struct Extraction;

  [[nodiscard]] bool allowed(const std::string& rule,
                             const std::string& path) const;

  Spec spec_;
  std::string spec_path_;
  bool partial_ = false;
  std::map<std::string, SourceFile> files_;
};

}  // namespace reconfnet::protocheck
