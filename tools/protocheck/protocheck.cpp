#include "protocheck.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace reconfnet::protocheck {

using textscan::Tok;
using textscan::bracket_is_close;
using textscan::bracket_is_open;
using textscan::cpp_keywords;
using textscan::match_bracket;
using textscan::skip_angles;
using textscan::starts_with;
using textscan::tok_is;
using textscan::tokenize;

// ---------------------------------------------------------------------------
// Rule catalogue

const std::vector<textscan::RuleInfo>& rules() {
  static const std::vector<textscan::RuleInfo> kRules = {
      {"RNP301", "Bus<T> binding with an undeclared message type"},
      {"RNP302", "spec message never sent anywhere (orphan)"},
      {"RNP303", "spec message never consumed via inbox() (orphan)"},
      {"RNP304", "send site in a file not listed as a sender"},
      {"RNP305", "inbox site in a file not listed as a receiver"},
      {"RNP306", "send-site bits expression not among the spec formulas"},
      {"RNP307", "payload member that cannot go on a wire"},
      {"RNP308", "send after the bus's final step"},
      {"RNP309", "pinned constant's token sequence missing"},
      {"RNP310", "payload struct not found in its declared file"},
      {"RNP390", "malformed reconfnet-protocheck suppression"},
  };
  return kRules;
}

namespace {

/// Canonical form of an expression: token texts joined by single spaces.
/// Both the spec strings and the code go through the same tokenizer, so
/// whitespace, line breaks and digit grouping compare equal.
std::string normalize_expr(const std::string& text) {
  const std::vector<Tok> toks = tokenize({text});
  std::string out;
  for (const Tok& tok : toks) {
    if (!out.empty()) out += ' ';
    out += tok.text;
  }
  return out;
}

std::string normalize_range(const std::vector<Tok>& toks, std::size_t begin,
                            std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (!out.empty()) out += ' ';
    out += toks[i].text;
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Spec parsing

namespace {

bool fill_message(const textscan::TomlSection& section, MessageSpec& msg,
                  std::string& error) {
  msg.line = section.line;
  for (const auto& entry : section.entries) {
    const bool want_array = entry.key == "senders" ||
                            entry.key == "receivers" || entry.key == "bits";
    if (want_array != entry.is_array) {
      error = "line " + std::to_string(entry.line) + ": message key " +
              entry.key + (want_array ? " needs an array" : " needs a string");
      return false;
    }
    if (entry.key == "name") {
      msg.name = entry.scalar;
    } else if (entry.key == "file") {
      msg.file = entry.scalar;
    } else if (entry.key == "subsystem") {
      msg.subsystem = entry.scalar;
    } else if (entry.key == "senders") {
      msg.senders = entry.items;
    } else if (entry.key == "receivers") {
      msg.receivers = entry.items;
    } else if (entry.key == "bits") {
      msg.bits = entry.items;
    } else {
      error = "line " + std::to_string(entry.line) +
              ": unknown message key " + entry.key;
      return false;
    }
  }
  if (msg.name.empty() || msg.file.empty() || msg.subsystem.empty() ||
      msg.senders.empty() || msg.receivers.empty() || msg.bits.empty()) {
    error = "line " + std::to_string(section.line) +
            ": [[message]] needs name, file, subsystem, senders, receivers "
            "and bits";
    return false;
  }
  return true;
}

bool fill_constant(const textscan::TomlSection& section, ConstantSpec& constant,
                   std::string& error) {
  constant.line = section.line;
  for (const auto& entry : section.entries) {
    if (entry.is_array) {
      error = "line " + std::to_string(entry.line) + ": constant key " +
              entry.key + " needs a string";
      return false;
    }
    if (entry.key == "name") {
      constant.name = entry.scalar;
    } else if (entry.key == "file") {
      constant.file = entry.scalar;
    } else if (entry.key == "code") {
      constant.code = entry.scalar;
    } else if (entry.key == "note") {
      // Documentation only.
    } else {
      error = "line " + std::to_string(entry.line) +
              ": unknown constant key " + entry.key;
      return false;
    }
  }
  if (constant.name.empty() || constant.file.empty() ||
      constant.code.empty()) {
    error = "line " + std::to_string(section.line) +
            ": [[constant]] needs name, file and code";
    return false;
  }
  return true;
}

}  // namespace

bool parse_spec(const std::string& text, Spec& spec, std::string& error) {
  spec = Spec{};
  std::vector<textscan::TomlSection> sections;
  if (!textscan::parse_toml_subset(text, sections, error)) return false;
  for (const auto& section : sections) {
    if (section.is_array_of_tables && section.name == "message") {
      MessageSpec msg;
      if (!fill_message(section, msg, error)) return false;
      spec.messages.push_back(std::move(msg));
    } else if (section.is_array_of_tables && section.name == "constant") {
      ConstantSpec constant;
      if (!fill_constant(section, constant, error)) return false;
      spec.constants.push_back(std::move(constant));
    } else if (!section.is_array_of_tables && section.name == "options") {
      for (const auto& entry : section.entries) {
        if (entry.key == "roots" && entry.is_array) {
          spec.roots = entry.items;
        } else {
          error = "line " + std::to_string(entry.line) +
                  ": unknown option " + entry.key;
          return false;
        }
      }
    } else if (!section.is_array_of_tables && section.name == "allow") {
      for (const auto& entry : section.entries) {
        if (!entry.is_array) {
          error = "line " + std::to_string(entry.line) + ": bad allow array";
          return false;
        }
        spec.allow[entry.key] = entry.items;
      }
    } else {
      error = "line " + std::to_string(section.line) + ": unknown section " +
              section.name;
      return false;
    }
  }
  // Duplicate (name, file) message entries would make resolution ambiguous.
  std::set<std::pair<std::string, std::string>> seen;
  for (const MessageSpec& msg : spec.messages) {
    if (!seen.insert({msg.name, msg.file}).second) {
      error = "line " + std::to_string(msg.line) + ": duplicate message " +
              msg.name + " in " + msg.file;
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Extraction

struct Driver::Extraction {
  struct StructDef {
    std::string file;
    std::size_t line = 0;
    std::size_t body_begin = 0;  // token index just past '{'
    std::size_t body_end = 0;    // token index of the matching '}'
  };

  struct SendSite {
    std::size_t line = 0;
    std::string bits;  // normalized; empty when the call did not parse
  };

  struct Event {
    enum class Kind { kSend, kStep } kind;
    std::size_t line = 0;
    std::size_t send_index = 0;  // into Binding::sends for kSend
  };

  struct Binding {
    std::string file;
    std::size_t line = 0;       // declaration line
    std::size_t decl_tok = 0;   // declaration token index
    std::string var;
    std::string msg;            // template argument's final identifier
    std::vector<SendSite> sends;
    std::vector<std::size_t> inbox_lines;
    std::vector<Event> events;
  };

  /// struct name -> every definition site in the tree (payload structs are
  /// often file-local, and the same name may exist in several files).
  std::map<std::string, std::vector<StructDef>> structs;
  /// `using X = std::shared_ptr<...>`-style aliases that hide a pointer.
  std::set<std::string> pointer_aliases;
  std::map<std::string, std::vector<Tok>> tokens;  // per file
  std::vector<Binding> bindings;

  std::map<std::string, std::string> impurity_memo;

  void collect_global(const std::string& path);
  void collect_bindings_and_events(const std::string& path);

  /// Calls `sink(line, description)` for each wire-unsafe member of `def`;
  /// returns true if any member was flagged.
  template <typename Sink>
  bool scan_members(const StructDef& def, Sink&& sink,
                    std::set<std::string>& visiting);

  /// Non-empty description if any definition of struct `name` transitively
  /// holds a wire-unsafe member.
  std::string struct_impurity(const std::string& name,
                              std::set<std::string>& visiting);
};

void Driver::Extraction::collect_global(const std::string& path) {
  const std::vector<Tok>& toks = tokens.at(path);
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    // struct NAME { ... };  (skips forward declarations)
    if (toks[i].text == "struct" && toks[i + 1].kind == Tok::Kind::kIdent) {
      std::size_t j = i + 2;
      while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";" &&
             toks[j].text != "(")
        ++j;
      if (j < toks.size() && toks[j].text == "{") {
        const std::size_t close = match_bracket(toks, j);
        if (close < toks.size()) {
          structs[toks[i + 1].text].push_back(
              {path, toks[i + 1].line, j + 1, close});
        }
      }
    }
    // using NAME = <something pointer-like>;
    if (toks[i].text == "using" && toks[i + 1].kind == Tok::Kind::kIdent &&
        tok_is(toks, i + 2, "=")) {
      for (std::size_t j = i + 3; j < toks.size() && toks[j].text != ";";
           ++j) {
        if (toks[j].text == "*" || toks[j].text == "shared_ptr" ||
            toks[j].text == "unique_ptr" || toks[j].text == "weak_ptr") {
          pointer_aliases.insert(toks[i + 1].text);
          break;
        }
      }
    }
  }
}

void Driver::Extraction::collect_bindings_and_events(const std::string& path) {
  const std::vector<Tok>& toks = tokens.at(path);

  // Pass 1: Bus<Msg> bindings. A re-declaration of the same variable name
  // (two functions in one file each owning a `bus`) closes the previous
  // binding: resolution below picks the binding with the largest declaration
  // index at or before each use.
  const std::size_t first_binding = bindings.size();
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text != "Bus" || !tok_is(toks, i + 1, "<")) continue;
    const std::size_t past = skip_angles(toks, i + 1);
    if (past >= toks.size() || toks[past].kind != Tok::Kind::kIdent ||
        cpp_keywords().count(toks[past].text) != 0)
      continue;
    std::string msg;
    for (std::size_t j = i + 2; j + 1 < past; ++j) {
      if (toks[j].kind == Tok::Kind::kIdent) msg = toks[j].text;
    }
    if (msg.empty()) continue;
    Binding binding;
    binding.file = path;
    binding.line = toks[past].line;
    binding.decl_tok = past;
    binding.var = toks[past].text;
    binding.msg = msg;
    bindings.push_back(std::move(binding));
  }

  std::set<std::string> vars;
  for (std::size_t b = first_binding; b < bindings.size(); ++b) {
    vars.insert(bindings[b].var);
  }
  if (vars.empty()) return;

  // Pass 2: step-alias lambdas — `auto step_bus = [&]() { ... bus.step(...) }`.
  // Their bodies are excluded from the linear event scan (the step happens
  // at the call sites, not the definition), and each call site counts as a
  // step event for the wrapped bus.
  struct StepAlias {
    std::string name;
    std::string var;  // the bus it steps
  };
  std::vector<StepAlias> aliases;
  std::vector<std::pair<std::size_t, std::size_t>> excluded;  // [begin, end]
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].kind != Tok::Kind::kIdent || !tok_is(toks, i + 1, "=") ||
        !tok_is(toks, i + 2, "["))
      continue;
    std::size_t j = match_bracket(toks, i + 2);  // capture list
    if (j >= toks.size()) continue;
    ++j;
    if (j < toks.size() && toks[j].text == "(") {
      j = match_bracket(toks, j);
      if (j >= toks.size()) continue;
      ++j;
    }
    while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") ++j;
    if (j >= toks.size() || toks[j].text != "{") continue;
    const std::size_t close = match_bracket(toks, j);
    if (close >= toks.size()) continue;
    for (std::size_t k = j + 1; k + 2 < close; ++k) {
      if (toks[k].kind == Tok::Kind::kIdent && vars.count(toks[k].text) != 0 &&
          toks[k + 1].text == "." && toks[k + 2].text == "step") {
        aliases.push_back({toks[i].text, toks[k].text});
        excluded.emplace_back(j, close);
        break;
      }
    }
  }

  const auto alias_of = [&](const std::string& name) -> const StepAlias* {
    for (const StepAlias& alias : aliases) {
      if (alias.name == name) return &alias;
    }
    return nullptr;
  };
  const auto binding_for = [&](const std::string& var,
                               std::size_t at) -> Binding* {
    Binding* best = nullptr;
    for (std::size_t b = first_binding; b < bindings.size(); ++b) {
      if (bindings[b].var == var && bindings[b].decl_tok <= at) {
        best = &bindings[b];
      }
    }
    return best;
  };

  // Pass 3: linear event scan.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    bool skip = false;
    for (const auto& [begin, end] : excluded) {
      if (i > begin && i < end) {
        i = end;
        skip = true;
        break;
      }
    }
    if (skip || toks[i].kind != Tok::Kind::kIdent) continue;
    if (const StepAlias* alias = alias_of(toks[i].text);
        alias != nullptr && tok_is(toks, i + 1, "(")) {
      if (Binding* binding = binding_for(alias->var, i)) {
        binding->events.push_back(
            {Event::Kind::kStep, toks[i].line, 0});
      }
      continue;
    }
    if (vars.count(toks[i].text) == 0 || !tok_is(toks, i + 1, ".") ||
        i + 3 >= toks.size() || toks[i + 3].text != "(")
      continue;
    Binding* binding = binding_for(toks[i].text, i);
    if (binding == nullptr) continue;
    const std::string& method = toks[i + 2].text;
    if (method == "inbox") {
      binding->inbox_lines.push_back(toks[i].line);
    } else if (method == "step") {
      binding->events.push_back({Event::Kind::kStep, toks[i].line, 0});
    } else if (method == "send") {
      // send(from, to, payload, bits): split the argument list at top-level
      // commas (brace/paren/bracket depth aware; template arguments with
      // commas would mis-split, but bits expressions do not contain them).
      const std::size_t open = i + 3;
      const std::size_t close = match_bracket(toks, open);
      SendSite site;
      site.line = toks[i].line;
      if (close < toks.size()) {
        std::vector<std::pair<std::size_t, std::size_t>> args;
        std::size_t arg_begin = open + 1;
        int depth = 0;
        for (std::size_t j = open + 1; j < close; ++j) {
          if (bracket_is_open(toks[j].text)) ++depth;
          if (bracket_is_close(toks[j].text)) --depth;
          if (depth == 0 && toks[j].text == ",") {
            args.emplace_back(arg_begin, j);
            arg_begin = j + 1;
          }
        }
        args.emplace_back(arg_begin, close);
        if (args.size() == 4) {
          site.bits = normalize_range(toks, args[3].first, args[3].second);
        }
      }
      binding->events.push_back(
          {Event::Kind::kSend, site.line, binding->sends.size()});
      binding->sends.push_back(std::move(site));
    }
  }
}

template <typename Sink>
bool Driver::Extraction::scan_members(const StructDef& def, Sink&& sink,
                                      std::set<std::string>& visiting) {
  static const std::set<std::string> kSkipStarters = {
      "enum",    "struct",  "class",    "using", "typedef",
      "static",  "friend",  "template", "public", "private",
      "protected"};
  static const std::set<std::string> kSmartPtrs = {"shared_ptr", "unique_ptr",
                                                   "weak_ptr"};
  const std::vector<Tok>& toks = tokens.at(def.file);
  bool any = false;
  std::size_t stmt_begin = def.body_begin;
  int depth = 0;
  for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
    if (bracket_is_open(toks[i].text)) ++depth;
    if (bracket_is_close(toks[i].text)) --depth;
    if (depth != 0 || toks[i].text != ";") continue;
    const std::size_t begin = stmt_begin;
    const std::size_t end = i;
    stmt_begin = i + 1;
    if (begin >= end) continue;
    if (kSkipStarters.count(toks[begin].text) != 0) continue;
    // Constructors and member functions: a '(' at depth 0 before any '='.
    bool is_function = false;
    int d = 0;
    for (std::size_t j = begin; j < end; ++j) {
      if (d == 0 && toks[j].text == "(") {
        is_function = true;
        break;
      }
      if (d == 0 && toks[j].text == "=") break;
      if (bracket_is_open(toks[j].text)) ++d;
      if (bracket_is_close(toks[j].text)) --d;
    }
    if (is_function) continue;
    std::string problem;
    for (std::size_t j = begin; j < end && problem.empty(); ++j) {
      const std::string& t = toks[j].text;
      if (t == "*") {
        problem = "raw pointer member";
      } else if (toks[j].kind != Tok::Kind::kIdent) {
        continue;
      } else if (kSmartPtrs.count(t) != 0) {
        problem = "std::" + t + " member";
      } else if (t == "float" || t == "double") {
        problem = "floating-point member (not exactly serializable)";
      } else if (starts_with(t, "unordered_")) {
        problem = "std::" + t + " member (bucket order)";
      } else if (pointer_aliases.count(t) != 0) {
        problem = "pointer-alias member ('" + t + "' hides a pointer)";
      }
    }
    if (problem.empty()) {
      // Recurse into member struct types by name.
      for (std::size_t j = begin; j < end && problem.empty(); ++j) {
        if (toks[j].kind != Tok::Kind::kIdent ||
            structs.count(toks[j].text) == 0)
          continue;
        const std::string nested = struct_impurity(toks[j].text, visiting);
        if (!nested.empty()) {
          problem = "member type '" + toks[j].text + "' has a " + nested;
        }
      }
    }
    if (!problem.empty()) {
      sink(toks[begin].line, problem);
      any = true;
    }
  }
  return any;
}

std::string Driver::Extraction::struct_impurity(
    const std::string& name, std::set<std::string>& visiting) {
  const auto memo = impurity_memo.find(name);
  if (memo != impurity_memo.end()) return memo->second;
  if (!visiting.insert(name).second) return {};  // cycle: assume pure
  std::string result;
  const auto it = structs.find(name);
  if (it != structs.end()) {
    for (const StructDef& def : it->second) {
      scan_members(
          def,
          [&](std::size_t, const std::string& description) {
            if (result.empty()) result = description;
          },
          visiting);
      if (!result.empty()) break;
    }
  }
  visiting.erase(name);
  impurity_memo[name] = result;
  return result;
}

// ---------------------------------------------------------------------------
// Driver

Driver::Driver(Spec spec, std::string spec_path)
    : spec_(std::move(spec)), spec_path_(std::move(spec_path)) {}

void Driver::add_file(const std::string& path, const std::string& content) {
  files_.emplace(path, strip_source(path, content));
}

void Driver::set_partial(bool partial) { partial_ = partial; }

bool Driver::allowed(const std::string& rule, const std::string& path) const {
  const auto it = spec_.allow.find(rule);
  if (it == spec_.allow.end()) return false;
  return textscan::matches_any_prefix(path, it->second);
}

Driver::Result Driver::run() {
  Result result;
  Extraction ex;
  for (const auto& [path, file] : files_) {
    ex.tokens.emplace(path, tokenize(file.code));
  }
  for (const auto& [path, file] : files_) ex.collect_global(path);
  for (const auto& [path, file] : files_) {
    ++result.files_checked;
    ex.collect_bindings_and_events(path);
  }

  std::vector<Finding> raw;

  // Spec lookup for a binding: prefer the entry whose declared file matches
  // where the payload struct is actually defined (payload structs are
  // file-local, and e.g. `WireMsg` exists in three files); fall back to a
  // unique entry by name (struct defined in a shared header).
  const auto resolve = [&](const Extraction::Binding& binding)
      -> const MessageSpec* {
    std::string defining_file;
    const auto defs = ex.structs.find(binding.msg);
    if (defs != ex.structs.end()) {
      for (const auto& def : defs->second) {
        if (def.file == binding.file) defining_file = def.file;
      }
      if (defining_file.empty() && defs->second.size() == 1) {
        defining_file = defs->second.front().file;
      }
    }
    const MessageSpec* by_name = nullptr;
    std::size_t name_matches = 0;
    for (const MessageSpec& msg : spec_.messages) {
      if (msg.name != binding.msg) continue;
      ++name_matches;
      by_name = &msg;
      if (!defining_file.empty() && msg.file == defining_file) return &msg;
    }
    return name_matches == 1 ? by_name : nullptr;
  };

  struct Usage {
    bool sent = false;
    bool consumed = false;
  };
  std::map<const MessageSpec*, Usage> usage;

  for (const Extraction::Binding& binding : ex.bindings) {
    const MessageSpec* spec = resolve(binding);
    if (spec == nullptr) {
      raw.push_back(
          {binding.file, binding.line, "RNP301",
           "message type '" + binding.msg +
               "' is not declared in the protocol spec (" + spec_path_ +
               "); every wire format needs a [[message]] entry"});
    } else {
      std::set<std::string> legal_bits;
      for (const std::string& expr : spec->bits) {
        legal_bits.insert(normalize_expr(expr));
      }
      for (const Extraction::SendSite& send : binding.sends) {
        usage[spec].sent = true;
        if (!textscan::matches_any_prefix(binding.file, spec->senders)) {
          raw.push_back({binding.file, send.line, "RNP304",
                         "send of '" + spec->name + "' from " + binding.file +
                             ", which the spec does not list as a sender"});
        }
        if (!send.bits.empty() && legal_bits.count(send.bits) == 0) {
          std::string expected;
          for (const std::string& expr : spec->bits) {
            if (!expected.empty()) expected += "  |  ";
            expected += expr;
          }
          raw.push_back(
              {binding.file, send.line, "RNP306",
               "bits expression `" + send.bits + "` for message '" +
                   spec->name +
                   "' does not match the spec (legal: " + expected + ")"});
        }
      }
      for (const std::size_t line : binding.inbox_lines) {
        usage[spec].consumed = true;
        if (!textscan::matches_any_prefix(binding.file, spec->receivers)) {
          raw.push_back({binding.file, line, "RNP305",
                         "inbox read of '" + spec->name + "' in " +
                             binding.file +
                             ", which the spec does not list as a receiver"});
        }
      }
    }
    // Phase order (receive -> compute -> send -> step): a send after the
    // binding's final step can never be delivered. Applies to unknown
    // message types too.
    std::size_t last_step = binding.events.size();
    for (std::size_t e = 0; e < binding.events.size(); ++e) {
      if (binding.events[e].kind == Extraction::Event::Kind::kStep) {
        last_step = e;
      }
    }
    for (std::size_t e = 0; e < binding.events.size(); ++e) {
      if (binding.events[e].kind != Extraction::Event::Kind::kSend) continue;
      if (last_step == binding.events.size()) {
        raw.push_back({binding.file, binding.events[e].line, "RNP308",
                       "send on bus '" + binding.var +
                           "', which is never stepped; the message cannot "
                           "be delivered"});
      } else if (e > last_step) {
        raw.push_back({binding.file, binding.events[e].line, "RNP308",
                       "send on bus '" + binding.var +
                           "' after its final step(); the round-phase order "
                           "is receive -> compute -> send -> step, so this "
                           "message is never delivered"});
      }
    }
  }

  for (const MessageSpec& msg : spec_.messages) {
    // Orphan checks need the whole tree in view.
    if (!partial_) {
      const MessageSpec* key = &msg;
      if (!usage[key].sent) {
        raw.push_back({spec_path_, msg.line, "RNP302",
                       "spec message '" + msg.name + "' (" + msg.file +
                           ") is never sent; drop the entry or wire the "
                           "sender"});
      }
      if (!usage[key].consumed) {
        raw.push_back({spec_path_, msg.line, "RNP303",
                       "spec message '" + msg.name + "' (" + msg.file +
                           ") is never consumed via inbox(); drop the entry "
                           "or add the handler"});
      }
    }
    if (partial_ && files_.count(msg.file) == 0) continue;
    const Extraction::StructDef* def = nullptr;
    const auto defs = ex.structs.find(msg.name);
    if (defs != ex.structs.end()) {
      for (const auto& candidate : defs->second) {
        if (candidate.file == msg.file) def = &candidate;
      }
    }
    if (def == nullptr) {
      raw.push_back({spec_path_, msg.line, "RNP310",
                     "payload struct '" + msg.name + "' not found in " +
                         msg.file + " (spec and code disagree)"});
      continue;
    }
    std::set<std::string> visiting = {msg.name};
    ex.scan_members(
        *def,
        [&](std::size_t line, const std::string& description) {
          raw.push_back({msg.file, line, "RNP307",
                         "payload '" + msg.name + "' has a " + description +
                             "; wire formats must serialize "
                             "deterministically"});
        },
        visiting);
  }

  for (const ConstantSpec& constant : spec_.constants) {
    const auto it = ex.tokens.find(constant.file);
    if (it == ex.tokens.end()) {
      if (partial_) continue;
      raw.push_back({spec_path_, constant.line, "RNP309",
                     "constant '" + constant.name + "' pins " + constant.file +
                         ", which is not in the checked tree"});
      continue;
    }
    const std::vector<Tok> needle = tokenize({constant.code});
    const std::vector<Tok>& hay = it->second;
    bool found = needle.empty();
    for (std::size_t i = 0; !found && needle.size() <= hay.size() &&
                            i + needle.size() <= hay.size();
         ++i) {
      bool match = true;
      for (std::size_t j = 0; j < needle.size(); ++j) {
        if (hay[i + j].text != needle[j].text) {
          match = false;
          break;
        }
      }
      found = match;
    }
    if (!found) {
      raw.push_back({spec_path_, constant.line, "RNP309",
                     "constant '" + constant.name + "': `" + constant.code +
                         "` no longer appears in " + constant.file +
                         "; the code drifted from the spec (update one of "
                         "them deliberately)"});
    }
  }

  // Suppressions. Findings anchored to the spec file have no comment lines
  // to carry suppressions; they are fixed in the spec or carved out via
  // [allow].
  std::map<std::string, textscan::LineSuppressions> suppressions;
  for (const auto& [path, file] : files_) {
    auto collected =
        textscan::collect_suppressions(file, "reconfnet-protocheck:", "RNP");
    for (const std::size_t line : collected.malformed) {
      raw.push_back({path, line, "RNP390",
                     "malformed suppression; expected "
                     "`reconfnet-protocheck: allow(RNPxxx) reason`"});
    }
    suppressions.emplace(path, std::move(collected));
  }
  std::map<std::string, std::set<std::pair<std::size_t, std::string>>> used;
  for (Finding& finding : raw) {
    if (allowed(finding.rule, finding.file)) {
      result.suppressed_findings.push_back(std::move(finding));
      continue;
    }
    const auto file_it = suppressions.find(finding.file);
    if (finding.rule != "RNP390" && file_it != suppressions.end()) {
      const auto line_it = file_it->second.allow.find(finding.line);
      if (line_it != file_it->second.allow.end() &&
          line_it->second.count(finding.rule) != 0) {
        ++result.suppressed;
        used[finding.file].insert({finding.line, finding.rule});
        result.suppressed_findings.push_back(std::move(finding));
        continue;
      }
    }
    result.findings.push_back(std::move(finding));
  }
  for (const auto& [path, sup] : suppressions) {
    const auto stale = textscan::stale_suppressions(path, sup, used[path]);
    result.stale.insert(result.stale.end(), stale.begin(), stale.end());
  }

  textscan::sort_and_dedupe(result.findings);
  textscan::sort_and_dedupe(result.suppressed_findings);
  return result;
}

}  // namespace reconfnet::protocheck
