#!/usr/bin/env bash
# Run reconfnet_racecheck (tools/racecheck/) — the concurrency-safety &
# determinism-under-parallelism gate — and fail non-zero on any unsuppressed
# finding. The checker reads the parallel-region inventory from
# tools/racecheck/concurrency.toml and flags shared-state mutation from
# parallel bodies, unsplit RNG use, wrong-index container writes,
# completion-order merging, ad-hoc synchronization outside src/runtime/,
# global-state reach-through, and spec drift (DESIGN.md §13). The dynamic
# half — the ownership tracker and the schedule-perturbation replay harness —
# lives in src/runtime/racecheck.* and tests/racecheck_replay_test.cpp. Like
# run_lint.sh it is zero-dependency: with no build tree it is
# bootstrap-compiled on the spot via tools/bootstrap_tool.sh.
#
# Usage:
#   tools/run_racecheck.sh [build-dir] [file...]
#
#   build-dir  build tree to take the reconfnet_racecheck binary from
#              (default: first existing of build/default, build, build/tidy;
#              bootstrap-compiled when none is configured)
#   file...    restrict the run to these sources (partial mode: whole-spec
#              rules such as the dead-region drift check are skipped)
#
# Environment:
#   RACECHECK_LOG    also write the findings to this file (CI uploads it as
#                    an artifact); written even when the run is clean.
#   RACECHECK_SARIF  also write a SARIF 2.1.0 log to this file (for the CI
#                    code-scanning upload).
#   CXX              compiler for the bootstrap build (default: c++)
set -euo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

build_dir="${1:-}"
if [[ $# -gt 0 ]]; then
  shift
fi
if [[ -z "${build_dir}" ]]; then
  for candidate in build/default build build/tidy; do
    if [[ -f "${candidate}/CMakeCache.txt" ]]; then
      build_dir="${candidate}"
      break
    fi
  done
fi

check_bin="$(tools/bootstrap_tool.sh reconfnet_racecheck tools/racecheck \
  "${build_dir}" \
  tools/lint/textscan.hpp tools/lint/textscan.cpp \
  tools/racecheck/racecheck.hpp tools/racecheck/racecheck.cpp \
  tools/racecheck/main.cpp)"

echo "reconfnet_racecheck $("${check_bin}" --version | awk '{print $2}'): \
$("${check_bin}" --list-rules | wc -l) rules active" >&2

declare -a args=(--root . --spec tools/racecheck/concurrency.toml)
if [[ -n "${RACECHECK_SARIF:-}" ]]; then
  args+=(--sarif "${RACECHECK_SARIF}")
fi
if [[ $# -gt 0 ]]; then
  args+=("$@")
fi

status=0
if [[ -n "${RACECHECK_LOG:-}" ]]; then
  "${check_bin}" "${args[@]}" 2>&1 | tee "${RACECHECK_LOG}" || status=$?
else
  "${check_bin}" "${args[@]}" || status=$?
fi
exit "${status}"
