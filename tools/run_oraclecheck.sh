#!/usr/bin/env bash
# Run reconfnet_oraclecheck (tools/oraclecheck/) — the t-late adversary
# information-flow gate — and fail non-zero on any unsuppressed finding. The
# checker reads the adversary oracle inventory from
# tools/oraclecheck/oracle.toml and flags adversary code off its permitted
# read surface, snapshot-machinery reach, protocol code reading adversary
# internals, staleness-arithmetic drift at the harness serve sites, inline
# adversary RNG seeds, shared-global covert channels, and spec drift
# (DESIGN.md §14). The dynamic half — the access-audited
# sim::StaleSnapshotView re-asserting now - snapshot.round >= t on every
# read under RECONFNET_ORACLEAUDIT — lives in src/sim/stale_view.hpp and
# src/audit/. Like run_lint.sh it is zero-dependency: with no build tree it
# is bootstrap-compiled on the spot via tools/bootstrap_tool.sh.
#
# Usage:
#   tools/run_oraclecheck.sh [build-dir] [file...]
#
#   build-dir  build tree to take the reconfnet_oraclecheck binary from
#              (default: first existing of build/default, build, build/tidy;
#              bootstrap-compiled when none is configured)
#   file...    restrict the run to these sources (partial mode: whole-spec
#              rules such as the entrypoint drift check are skipped)
#
# Environment:
#   ORACLECHECK_LOG    also write the findings to this file (CI uploads it
#                      as an artifact); written even when the run is clean.
#   ORACLECHECK_SARIF  also write a SARIF 2.1.0 log to this file (for the
#                      CI code-scanning upload).
#   CXX                compiler for the bootstrap build (default: c++)
set -euo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

build_dir="${1:-}"
if [[ $# -gt 0 ]]; then
  shift
fi
if [[ -z "${build_dir}" ]]; then
  for candidate in build/default build build/tidy; do
    if [[ -f "${candidate}/CMakeCache.txt" ]]; then
      build_dir="${candidate}"
      break
    fi
  done
fi

check_bin="$(tools/bootstrap_tool.sh reconfnet_oraclecheck tools/oraclecheck \
  "${build_dir}" \
  tools/lint/textscan.hpp tools/lint/textscan.cpp \
  tools/oraclecheck/oraclecheck.hpp tools/oraclecheck/oraclecheck.cpp \
  tools/oraclecheck/main.cpp)"

echo "reconfnet_oraclecheck $("${check_bin}" --version | awk '{print $2}'): \
$("${check_bin}" --list-rules | wc -l) rules active" >&2

declare -a args=(--root . --spec tools/oraclecheck/oracle.toml)
if [[ -n "${ORACLECHECK_SARIF:-}" ]]; then
  args+=(--sarif "${ORACLECHECK_SARIF}")
fi
if [[ $# -gt 0 ]]; then
  args+=("$@")
fi

status=0
if [[ -n "${ORACLECHECK_LOG:-}" ]]; then
  "${check_bin}" "${args[@]}" 2>&1 | tee "${ORACLECHECK_LOG}" || status=$?
else
  "${check_bin}" "${args[@]}" || status=$?
fi
exit "${status}"
