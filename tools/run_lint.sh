#!/usr/bin/env bash
# Run reconfnet_lint (tools/lint/) over the first-party tree and fail
# non-zero on any unsuppressed finding. Companion to run_tidy.sh: clang-tidy
# needs the clang toolchain, while this checker is zero-dependency — with no
# build tree it is bootstrap-compiled on the spot via tools/bootstrap_tool.sh,
# so the determinism/layering gate runs everywhere, including the gcc-only
# dev container.
#
# Usage:
#   tools/run_lint.sh [build-dir] [file...]
#
#   build-dir  build tree to take the reconfnet_lint binary and
#              compile_commands.json from (default: first existing of
#              build/default, build, build/tidy; bootstrap-compiled into
#              build/reconfnet_lint-bootstrap when none is configured)
#   file...    restrict the run to these sources (default: every file under
#              src/ bench/ tools/ examples/ tests/)
#
# Environment:
#   LINT_LOG    also write the findings to this file (CI uploads it as an
#               artifact); the log is written even when the run is clean.
#   LINT_SARIF  also write a SARIF 2.1.0 log to this file (for the CI
#               code-scanning upload).
#   CXX         compiler for the bootstrap build (default: c++)
set -euo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

build_dir="${1:-}"
if [[ $# -gt 0 ]]; then
  shift
fi
if [[ -z "${build_dir}" ]]; then
  for candidate in build/default build build/tidy; do
    if [[ -f "${candidate}/CMakeCache.txt" ]]; then
      build_dir="${candidate}"
      break
    fi
  done
fi

lint_bin="$(tools/bootstrap_tool.sh reconfnet_lint tools/lint \
  "${build_dir}" \
  tools/lint/textscan.hpp tools/lint/textscan.cpp \
  tools/lint/lint.hpp tools/lint/lint.cpp tools/lint/main.cpp)"

echo "reconfnet_lint $("${lint_bin}" --version | awk '{print $2}'): \
$("${lint_bin}" --list-rules | wc -l) rules active" >&2

declare -a args=(--root . --config tools/lint/layers.toml)
if [[ -n "${build_dir}" && -f "${build_dir}/compile_commands.json" ]]; then
  args+=(--compdb "${build_dir}/compile_commands.json")
fi
if [[ -n "${LINT_SARIF:-}" ]]; then
  args+=(--sarif "${LINT_SARIF}")
fi
if [[ $# -gt 0 ]]; then
  args+=("$@")
fi

status=0
if [[ -n "${LINT_LOG:-}" ]]; then
  "${lint_bin}" "${args[@]}" 2>&1 | tee "${LINT_LOG}" || status=$?
else
  "${lint_bin}" "${args[@]}" || status=$?
fi
exit "${status}"
