#!/usr/bin/env bash
# Run reconfnet_lint (tools/lint/) over the first-party tree and fail
# non-zero on any unsuppressed finding. Companion to run_tidy.sh: clang-tidy
# needs the clang toolchain, while this checker is zero-dependency — it is
# built from two C++20 files on the spot if no build tree has it yet, so the
# determinism/layering gate runs everywhere, including the gcc-only dev
# container.
#
# Usage:
#   tools/run_lint.sh [build-dir] [file...]
#
#   build-dir  build tree to take the reconfnet_lint binary and
#              compile_commands.json from (default: first existing of
#              build/default, build, build/tidy; bootstrap-compiled into
#              build/lint-bootstrap when none is configured)
#   file...    restrict the run to these sources (default: every file under
#              src/ bench/ tools/ examples/ tests/)
#
# Environment:
#   LINT_LOG   also write the findings to this file (CI uploads it as an
#              artifact); the log is written even when the run is clean.
#   CXX        compiler for the bootstrap build (default: c++)
set -euo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

build_dir="${1:-}"
if [[ $# -gt 0 ]]; then
  shift
fi
if [[ -z "${build_dir}" ]]; then
  for candidate in build/default build build/tidy; do
    if [[ -f "${candidate}/CMakeCache.txt" ]]; then
      build_dir="${candidate}"
      break
    fi
  done
fi

# Locate the checker: prefer the build tree's binary (building it there if
# the tree is configured), fall back to a direct two-file compile.
lint_bin=""
if [[ -n "${build_dir}" && -f "${build_dir}/CMakeCache.txt" ]]; then
  lint_bin="${build_dir}/tools/lint/reconfnet_lint"
  if [[ ! -x "${lint_bin}" ]]; then
    echo "run_lint: building reconfnet_lint in ${build_dir}" >&2
    cmake --build "${build_dir}" --target reconfnet_lint -- -j "$(nproc)" \
      > /dev/null
  fi
fi
if [[ -z "${lint_bin}" || ! -x "${lint_bin}" ]]; then
  lint_bin="build/lint-bootstrap/reconfnet_lint"
  if [[ ! -x "${lint_bin}" || tools/lint/lint.cpp -nt "${lint_bin}" ||
        tools/lint/main.cpp -nt "${lint_bin}" ]]; then
    echo "run_lint: bootstrap-compiling ${lint_bin}" >&2
    mkdir -p "$(dirname "${lint_bin}")"
    "${CXX:-c++}" -std=c++20 -O1 -I tools/lint \
      tools/lint/lint.cpp tools/lint/main.cpp -o "${lint_bin}"
  fi
fi

declare -a args=(--root . --config tools/lint/layers.toml)
if [[ -n "${build_dir}" && -f "${build_dir}/compile_commands.json" ]]; then
  args+=(--compdb "${build_dir}/compile_commands.json")
fi
if [[ $# -gt 0 ]]; then
  args+=("$@")
fi

status=0
if [[ -n "${LINT_LOG:-}" ]]; then
  "${lint_bin}" "${args[@]}" 2>&1 | tee "${LINT_LOG}" || status=$?
else
  "${lint_bin}" "${args[@]}" || status=$?
fi
exit "${status}"
