// reconfnet_node — one live node of the Section 5 protocol (DESIGN.md §15).
//
//   reconfnet_node --self <id> [--nodes 64] [--dim 3] [--seed 1]
//                  [--table-seed 1] [--epochs 3] [--max-attempts 3]
//                  [--base-port 47000] [--round-us 50000] [--plan none]
//                  [--fault-salt 29281] [--incarnation 0] [--smoke]
//                  [--linger-us 500000] [--max-rounds 0]
//                  [--metrics-out <path>]
//
// tools/deploy_local.sh launches N of these against loopback UDP; every
// process derives the same initial configuration from (--dim, --nodes,
// --table-seed) and the same fault schedule from (--plan, --fault-salt), so
// no coordinator exists. Exit codes: 0 finished, 1 round cap hit (degraded,
// not wedged), 2 scripted crash-stop, 3 bind failure, 4 bad usage. Metrics
// land as one JSON object per node for the harvester.
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "support/args.hpp"
#include "transport/clock.hpp"
#include "transport/live_runtime.hpp"

namespace {

using namespace reconfnet;

int run(int argc, char** argv) {
  const support::Args args(argc, argv, 1, /*switches=*/{"smoke"});

  transport::LiveConfig config;
  config.self = args.get_u64("self", 0);
  config.nodes = args.get_int("nodes", 64);
  config.dimension = args.get_int("dim", 3);
  config.table_seed = args.get_u64("table-seed", 1);
  config.protocol.seed = args.get_u64("seed", 1);
  config.protocol.epochs = args.get_int("epochs", 3);
  config.protocol.max_attempts = args.get_int("max-attempts", 3);
  config.protocol.dht_smoke = args.has("smoke");
  config.base_port =
      static_cast<std::uint16_t>(args.get_int("base-port", 47000));
  config.incarnation =
      static_cast<std::uint32_t>(args.get_u64("incarnation", 0));
  config.plan_spec = args.get_string("plan", "none");
  config.fault_salt = args.get_u64("fault-salt", 0x7261);
  config.pacer.round_budget_us = args.get_int("round-us", 50'000);
  config.max_rounds = args.get_int("max-rounds", 0);
  config.linger_us = args.get_int("linger-us", 500'000);

  if (config.nodes <= 0 ||
      config.self >= static_cast<sim::NodeId>(config.nodes)) {
    std::cerr << "reconfnet_node: --self must be in [0, --nodes)\n";
    return 4;
  }

  transport::MonotonicClock clock;
  transport::LiveNodeRuntime node(config, &clock);
  const int code = node.run();

  const std::string metrics_path = args.get_string("metrics-out", "");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    node.metrics_json(code).dump(out, 2);
    out << '\n';
  }
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "reconfnet_node: " << error.what() << '\n';
    return 4;
  }
}
