#!/usr/bin/env bash
# Umbrella driver for the five reconfnet checkers: reconfnet_lint
# (determinism + layering + hygiene), reconfnet_protocheck (protocol
# conformance), reconfnet_hotcheck (hot-path allocations + copies),
# reconfnet_racecheck (concurrency safety + determinism under parallelism)
# and reconfnet_oraclecheck (t-late adversary information flow). Runs each
# gate, prints one summary table, and exits non-zero if any gate found
# something. Per-tool logs and SARIF files land in one directory so CI
# uploads a single artifact; the merged SARIF combines all five runs into
# one SARIF 2.1.0 log.
#
# Usage:
#   tools/run_checks.sh [build-dir]
#
#   build-dir  build tree to take the checker binaries from (default:
#              auto-detected by each run script; bootstrap-compiled when
#              none is configured)
#
# Environment:
#   CHECKS_DIR    directory for the per-tool logs and SARIF files
#                 (default: build/checks)
#   CHECKS_SARIF  also write a merged SARIF 2.1.0 log with all five runs
#                 (needs python3; for the CI code-scanning upload)
#   CHECKS_STALE  "1": append each tool's --stale-suppressions report after
#                 the table (advisory; never affects the exit status)
#   CXX           compiler for bootstrap builds (default: c++)
set -uo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

build_dir="${1:-}"
out_dir="${CHECKS_DIR:-build/checks}"
mkdir -p "${out_dir}"

# name | run script | log/sarif env prefix
checkers=(
  "lint LINT"
  "protocheck PROTOCHECK"
  "hotcheck HOTCHECK"
  "racecheck RACECHECK"
  "oraclecheck ORACLECHECK"
)

overall=0
declare -A tool_status
for entry in "${checkers[@]}"; do
  read -r name prefix <<< "${entry}"
  log="${out_dir}/${name}.log"
  sarif="${out_dir}/${name}.sarif"
  status=0
  env "${prefix}_LOG=${log}" "${prefix}_SARIF=${sarif}" \
    "tools/run_${name}.sh" "${build_dir}" > /dev/null 2>> "${log}" \
    || status=$?
  tool_status[${name}]="${status}"
  if [[ "${status}" -ne 0 ]]; then
    overall=1
    echo "--- reconfnet_${name} (exit ${status}) ---" >&2
    cat "${log}" >&2
  fi
done

# Summary table: counts come from each tool's own stderr summary line
# ("N files, ... M findings (K suppressed)"), captured in the log.
printf '%-22s %9s %11s %7s\n' "checker" "findings" "suppressed" "status" >&2
for entry in "${checkers[@]}"; do
  read -r name prefix <<< "${entry}"
  summary="$(grep -Eo '[0-9]+ findings \([0-9]+ suppressed\)' \
    "${out_dir}/${name}.log" | tail -1)"
  findings="$(cut -d' ' -f1 <<< "${summary:-? findings}")"
  suppressed="$(grep -Eo '\([0-9]+' <<< "${summary:-(?}" | tr -d '(')"
  case "${tool_status[${name}]}" in
    0) label="ok" ;;
    1) label="FINDINGS" ;;
    *) label="ERROR" ;;
  esac
  printf '%-22s %9s %11s %7s\n' "reconfnet_${name}" "${findings:-?}" \
    "${suppressed:-?}" "${label}" >&2
done

if [[ "${CHECKS_STALE:-0}" == "1" ]]; then
  echo >&2
  echo "stale suppressions (advisory):" >&2
  for entry in "${checkers[@]}"; do
    read -r name prefix <<< "${entry}"
    "tools/run_${name}.sh" "${build_dir}" --stale-suppressions \
      2> /dev/null || true
  done
fi

if [[ -n "${CHECKS_SARIF:-}" ]]; then
  python3 - "${CHECKS_SARIF}" "${out_dir}"/*.sarif <<'EOF'
import json
import sys

out_path, inputs = sys.argv[1], sys.argv[2:]
merged = None
for path in inputs:
    with open(path) as f:
        log = json.load(f)
    if merged is None:
        merged = {k: v for k, v in log.items() if k != "runs"}
        merged["runs"] = []
    merged["runs"].extend(log["runs"])
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"merged {len(inputs)} SARIF logs into {out_path}", file=sys.stderr)
EOF
fi

exit "${overall}"
