#include "oraclecheck.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace reconfnet::oraclecheck {

using textscan::FunctionBody;
using textscan::Tok;
using textscan::find_functions;
using textscan::match_bracket;
using textscan::tok_is;
using textscan::tokenize;

// ---------------------------------------------------------------------------
// Rule catalogue

const std::vector<textscan::RuleInfo>& rules() {
  static const std::vector<textscan::RuleInfo> kRules = {
      {"RNO601", "adversary TU includes or references live state outside the "
                 "permitted read surface"},
      {"RNO602", "adversary code reaches for the snapshot machinery instead "
                 "of the harness-served stale view"},
      {"RNO603", "protocol code includes an adversary header or names a "
                 "concrete adversary strategy"},
      {"RNO604", "staleness-arithmetic drift: serve site deviates from the "
                 "spec-pinned stale_view(now - t) shape"},
      {"RNO605", "adversary constructed with an inline Rng seed not derived "
                 "from a dedicated split stream"},
      {"RNO606", "adversary code reaches known-global mutable state (covert "
                 "channel to the protocol layer)"},
      {"RNO610", "oracle.toml drift (dead entrypoint/servesite or broken "
                 "retention pin)"},
      {"RNO690", "malformed reconfnet-oraclecheck suppression"},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// Spec parsing

namespace {

bool fill_entrypoint(const textscan::TomlSection& section, EntrypointSpec& ep,
                     std::string& error) {
  ep.line = section.line;
  for (const auto& entry : section.entries) {
    if (entry.is_array) {
      error = "line " + std::to_string(entry.line) + ": entrypoint key " +
              entry.key + " needs a string";
      return false;
    }
    if (entry.key == "name") {
      ep.name = entry.scalar;
    } else if (entry.key == "file") {
      ep.file = entry.scalar;
    } else if (entry.key == "interface") {
      ep.interface = entry.scalar;
    } else if (entry.key == "method") {
      ep.method = entry.scalar;
    } else if (entry.key == "view") {
      ep.view = entry.scalar;
    } else if (entry.key == "note") {
      // Documentation only.
    } else {
      error = "line " + std::to_string(entry.line) +
              ": unknown entrypoint key " + entry.key;
      return false;
    }
  }
  if (ep.name.empty() || ep.file.empty() || ep.interface.empty() ||
      ep.method.empty()) {
    error = "line " + std::to_string(section.line) +
            ": [[entrypoint]] needs name, file, interface and method";
    return false;
  }
  return true;
}

bool fill_servesite(const textscan::TomlSection& section, ServeSiteSpec& site,
                    std::string& error) {
  site.line = section.line;
  for (const auto& entry : section.entries) {
    if (entry.is_array) {
      error = "line " + std::to_string(entry.line) + ": servesite key " +
              entry.key + " needs a string";
      return false;
    }
    if (entry.key == "name") {
      site.name = entry.scalar;
    } else if (entry.key == "file") {
      site.file = entry.scalar;
    } else if (entry.key == "function") {
      site.function = entry.scalar;
    } else if (entry.key == "round") {
      site.round_ident = entry.scalar;
    } else if (entry.key == "lateness") {
      site.lateness = entry.scalar;
    } else if (entry.key == "note") {
      // Documentation only.
    } else {
      error = "line " + std::to_string(entry.line) +
              ": unknown servesite key " + entry.key;
      return false;
    }
  }
  if (site.name.empty() || site.file.empty() || site.function.empty() ||
      site.round_ident.empty() || site.lateness.empty()) {
    error = "line " + std::to_string(section.line) +
            ": [[servesite]] needs name, file, function, round and lateness";
    return false;
  }
  return true;
}

}  // namespace

bool parse_spec(const std::string& text, Spec& spec, std::string& error) {
  spec = Spec{};
  std::vector<textscan::TomlSection> sections;
  if (!textscan::parse_toml_subset(text, sections, error)) return false;
  for (const auto& section : sections) {
    if (section.is_array_of_tables && section.name == "entrypoint") {
      EntrypointSpec ep;
      if (!fill_entrypoint(section, ep, error)) return false;
      spec.entrypoints.push_back(std::move(ep));
    } else if (section.is_array_of_tables && section.name == "servesite") {
      ServeSiteSpec site;
      if (!fill_servesite(section, site, error)) return false;
      spec.servesites.push_back(std::move(site));
    } else if (!section.is_array_of_tables && section.name == "options") {
      for (const auto& entry : section.entries) {
        if (entry.key == "roots" && entry.is_array) {
          spec.roots = entry.items;
        } else {
          error = "line " + std::to_string(entry.line) + ": unknown option " +
                  entry.key;
          return false;
        }
      }
    } else if (!section.is_array_of_tables && section.name == "surface") {
      for (const auto& entry : section.entries) {
        if (!entry.is_array) {
          error = "line " + std::to_string(entry.line) + ": surface key " +
                  entry.key + " needs an array";
          return false;
        }
        if (entry.key == "adversary_paths") {
          spec.adversary_paths = entry.items;
        } else if (entry.key == "permitted_includes") {
          spec.permitted_includes = entry.items;
        } else if (entry.key == "live_state") {
          spec.live_state = entry.items;
        } else if (entry.key == "rng_derivations") {
          spec.rng_derivations = entry.items;
        } else if (entry.key == "globals") {
          spec.globals = entry.items;
        } else if (entry.key == "harness_paths") {
          spec.harness_paths = entry.items;
        } else {
          error = "line " + std::to_string(entry.line) +
                  ": unknown surface key " + entry.key;
          return false;
        }
      }
    } else if (!section.is_array_of_tables && section.name == "snapshot") {
      spec.snapshot_line = section.line;
      for (const auto& entry : section.entries) {
        if (entry.is_array) {
          error = "line " + std::to_string(entry.line) + ": snapshot key " +
                  entry.key + " needs a string";
          return false;
        }
        if (entry.key == "retention") {
          spec.retention = entry.scalar;
        } else if (entry.key == "buffer_file") {
          spec.buffer_file = entry.scalar;
        } else if (entry.key == "horizon_method") {
          spec.horizon_method = entry.scalar;
        } else {
          error = "line " + std::to_string(entry.line) +
                  ": unknown snapshot key " + entry.key;
          return false;
        }
      }
    } else if (!section.is_array_of_tables && section.name == "allow") {
      for (const auto& entry : section.entries) {
        if (!entry.is_array) {
          error = "line " + std::to_string(entry.line) + ": bad allow array";
          return false;
        }
        spec.allow[entry.key] = entry.items;
      }
    } else {
      error = "line " + std::to_string(section.line) + ": unknown section " +
              section.name;
      return false;
    }
  }
  if (spec.adversary_paths.empty()) {
    error = "spec declares no [surface] adversary_paths";
    return false;
  }
  if (!spec.retention.empty() && spec.retention != "lateness-horizon") {
    error = "line " + std::to_string(spec.snapshot_line) +
            ": unknown snapshot retention policy '" + spec.retention +
            "' (the only sound policy is \"lateness-horizon\")";
    return false;
  }
  std::set<std::string> names;
  for (const EntrypointSpec& ep : spec.entrypoints) {
    if (!names.insert("e:" + ep.name).second) {
      error = "line " + std::to_string(ep.line) + ": duplicate entrypoint " +
              ep.name;
      return false;
    }
  }
  for (const ServeSiteSpec& site : spec.servesites) {
    if (!names.insert("s:" + site.name).second) {
      error = "line " + std::to_string(site.line) + ": duplicate servesite " +
              site.name;
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Token-level helpers

namespace {

/// Splits a spec expression like "attack.lateness" into the token texts the
/// tokenizer would produce for it, so it can be matched as a contiguous
/// subsequence of call-argument tokens.
std::vector<std::string> tokenize_expr(const std::string& expr) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < expr.size()) {
    const char c = expr[i];
    if (c == ' ') {
      ++i;
      continue;
    }
    if (textscan::is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < expr.size() && textscan::is_ident_char(expr[j])) ++j;
      out.push_back(expr.substr(i, j - i));
      i = j;
      continue;
    }
    if (c == '-' && i + 1 < expr.size() && expr[i + 1] == '>') {
      out.push_back("->");
      i += 2;
      continue;
    }
    out.push_back(std::string(1, c));
    ++i;
  }
  return out;
}

/// True when `needle` occurs as a contiguous run of token texts in
/// toks[begin, end).
bool contains_token_run(const std::vector<Tok>& toks, std::size_t begin,
                        std::size_t end,
                        const std::vector<std::string>& needle) {
  if (needle.empty() || begin + needle.size() > end) return false;
  for (std::size_t i = begin; i + needle.size() <= end; ++i) {
    bool match = true;
    for (std::size_t k = 0; k < needle.size(); ++k) {
      if (toks[i + k].text != needle[k]) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

/// A single-character punctuation token holding a digit: how numeric
/// literals surface in the token stream (identifiers cannot start with a
/// digit, so `42` lexes as two digit puncts and `0x...` as `0` + ident).
bool is_digit_tok(const Tok& tok) {
  return tok.kind == Tok::Kind::kPunct && tok.text.size() == 1 &&
         tok.text[0] >= '0' && tok.text[0] <= '9';
}

/// Snapshot-machinery member/free calls an adversary must never make.
const std::set<std::string>& snapshot_calls() {
  static const std::set<std::string> kCalls = {"latest", "stale_view",
                                               "serve_stale"};
  return kCalls;
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver

Driver::Driver(Spec spec, std::string spec_path)
    : spec_(std::move(spec)), spec_path_(std::move(spec_path)) {}

void Driver::add_file(const std::string& path, const std::string& content) {
  files_.emplace(path, strip_source(path, content));
}

void Driver::set_partial(bool partial) { partial_ = partial; }

bool Driver::allowed(const std::string& rule, const std::string& path) const {
  auto it = spec_.allow.find(rule);
  return it != spec_.allow.end() &&
         textscan::matches_any_prefix(path, it->second);
}

Driver::Result Driver::run() {
  Result result;
  result.files_checked = files_.size();

  std::map<std::string, std::vector<Tok>> tokens;
  for (const auto& [path, file] : files_) {
    tokens.emplace(path, tokenize(file.code));
  }

  const auto is_adversary = [&](const std::string& path) {
    return textscan::matches_any_prefix(path, spec_.adversary_paths);
  };
  const auto is_harness = [&](const std::string& path) {
    return textscan::matches_any_prefix(path, spec_.harness_paths);
  };
  const auto is_global = [&](const std::string& name) {
    if (name.size() > 2 && name.compare(0, 2, "g_") == 0) return true;
    return std::find(spec_.globals.begin(), spec_.globals.end(), name) !=
           spec_.globals.end();
  };

  // Adversary-path prefixes in include form: "src/adversary/" sources write
  // their includes as "adversary/...".
  std::vector<std::string> adversary_include_prefixes;
  for (const std::string& prefix : spec_.adversary_paths) {
    adversary_include_prefixes.push_back(
        textscan::starts_with(prefix, "src/") ? prefix.substr(4) : prefix);
  }

  // Concrete strategy names: classes/structs under the adversary paths that
  // derive from a declared entrypoint interface. These are what protocol
  // code must not name (RNO603) and what RNO605 watches constructions of.
  std::set<std::string> interfaces;
  for (const EntrypointSpec& ep : spec_.entrypoints)
    interfaces.insert(ep.interface);
  std::set<std::string> strategies;
  for (const auto& [path, toks] : tokens) {
    if (!is_adversary(path)) continue;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind != Tok::Kind::kIdent ||
          (toks[i].text != "class" && toks[i].text != "struct")) {
        continue;
      }
      if (toks[i + 1].kind != Tok::Kind::kIdent) continue;
      const std::string& name = toks[i + 1].text;
      // Scan the inheritance clause (up to the opening brace) for one of the
      // declared interfaces.
      for (std::size_t j = i + 2; j < toks.size() && toks[j].text != "{" &&
                                  toks[j].text != ";";
           ++j) {
        if (toks[j].kind == Tok::Kind::kIdent &&
            interfaces.count(toks[j].text) != 0) {
          strategies.insert(name);
          break;
        }
      }
    }
  }

  // --- adversary-file rules: RNO601, RNO602, RNO606 ------------------------
  for (const auto& [path, toks] : tokens) {
    if (!is_adversary(path)) continue;
    ++result.adversary_files;
    const SourceFile& file = files_.at(path);

    // RNO601 (include leg): every quoted include must be on the permitted
    // surface.
    for (const auto& [line, include] : file.includes) {
      if (textscan::matches_any_prefix(include, spec_.permitted_includes))
        continue;
      result.findings.push_back(
          {path, line, "RNO601",
           "adversary TU includes \"" + include +
               "\" which is outside the permitted read surface (stale view, "
               "id/blocked value types, support); a t-late adversary must "
               "not see live state"});
    }

    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Tok::Kind::kIdent) continue;
      const std::string& t = toks[i].text;
      const bool member_access =
          i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");

      // RNO601 (reference leg): live-state type names.
      if (std::find(spec_.live_state.begin(), spec_.live_state.end(), t) !=
          spec_.live_state.end()) {
        result.findings.push_back(
            {path, toks[i].line, "RNO601",
             "adversary code references live-state type '" + t +
                 "'; the adversary may only consume the harness-served "
                 "stale view"});
        continue;
      }

      // RNO602: snapshot machinery.
      if (t == "SnapshotBuffer") {
        result.findings.push_back(
            {path, toks[i].line, "RNO602",
             "adversary code reaches for SnapshotBuffer; the harness serves "
             "the stale view — the adversary never touches the buffer"});
        continue;
      }
      if (t == "TopologySnapshot") {
        result.findings.push_back(
            {path, toks[i].line, "RNO602",
             "adversary code references TopologySnapshot directly; consume "
             "the access-audited sim::StaleSnapshotView instead"});
        continue;
      }
      if (snapshot_calls().count(t) != 0 && tok_is(toks, i + 1, "(")) {
        result.findings.push_back(
            {path, toks[i].line, "RNO602",
             "adversary code calls " + t +
                 "(); fresh or self-served snapshots break the t-late "
                 "contract"});
        continue;
      }

      // RNO606: known-global mutable state, directly...
      if (!member_access && is_global(t)) {
        result.findings.push_back(
            {path, toks[i].line, "RNO606",
             "adversary code touches global mutable state '" + t +
                 "'; shared globals are a covert channel between the "
                 "adversary and the protocol"});
        continue;
      }
      // ...or through a same-file callee (one-level call-graph walk).
      if (member_access || !tok_is(toks, i + 1, "(")) continue;
      if (textscan::cpp_keywords().count(t) != 0) continue;
      // Skip the name token of a definition: `f(...) {` or `f(...) : init`
      // is f being defined, not called.
      {
        std::size_t after = match_bracket(toks, i + 1) + 1;
        while (after < toks.size() && toks[after].kind == Tok::Kind::kIdent &&
               (toks[after].text == "const" ||
                toks[after].text == "noexcept" ||
                toks[after].text == "override")) {
          ++after;
        }
        if (after < toks.size() &&
            (toks[after].text == "{" || toks[after].text == ":")) {
          continue;
        }
      }
      const std::vector<FunctionBody> defs = find_functions(toks, t);
      for (const FunctionBody& def : defs) {
        if (def.body_begin <= i && i < def.body_end) continue;  // recursion
        for (std::size_t k = def.body_begin; k < def.body_end; ++k) {
          if (toks[k].kind != Tok::Kind::kIdent) continue;
          if (k > 0 && (toks[k - 1].text == "." || toks[k - 1].text == "->"))
            continue;
          if (is_global(toks[k].text)) {
            result.findings.push_back(
                {path, toks[i].line, "RNO606",
                 "adversary code calls '" + t +
                     "' which touches global mutable state '" + toks[k].text +
                     "' (one-level call-graph walk)"});
            k = def.body_end;
            break;
          }
        }
        break;  // first definition is the one-level approximation
      }
    }
  }

  // --- RNO603: reverse isolation -------------------------------------------
  for (const auto& [path, toks] : tokens) {
    if (!textscan::starts_with(path, "src/")) continue;
    if (is_adversary(path) || is_harness(path)) continue;
    const SourceFile& file = files_.at(path);
    for (const auto& [line, include] : file.includes) {
      if (textscan::matches_any_prefix(include, adversary_include_prefixes)) {
        result.findings.push_back(
            {path, line, "RNO603",
             "protocol code includes adversary header \"" + include +
                 "\"; the protocol must not read adversary internals "
                 "(declare the file under harness_paths if it is a harness)"});
      }
    }
    for (const Tok& tok : toks) {
      if (tok.kind != Tok::Kind::kIdent) continue;
      if (strategies.count(tok.text) == 0) continue;
      result.findings.push_back(
          {path, tok.line, "RNO603",
           "protocol code names concrete adversary strategy '" + tok.text +
               "'; protocol behavior must not depend on which adversary is "
               "attacking"});
    }
  }

  // --- RNO604: staleness arithmetic ----------------------------------------
  const std::string buffer_dir = textscan::dirname_of(spec_.buffer_file);
  for (const auto& [path, toks] : tokens) {
    if (!textscan::starts_with(path, "src/")) continue;
    if (is_adversary(path)) continue;  // RNO602 owns adversary files
    const bool in_buffer_layer =
        !buffer_dir.empty() &&
        textscan::starts_with(path, (buffer_dir + "/").c_str());

    // Serve-site function ranges declared for this file.
    struct SiteRange {
      const ServeSiteSpec* site;
      std::size_t begin;
      std::size_t end;
    };
    std::vector<SiteRange> ranges;
    for (const ServeSiteSpec& site : spec_.servesites) {
      if (site.file != path) continue;
      for (const FunctionBody& fn : find_functions(toks, site.function)) {
        ranges.push_back({&site, fn.body_begin, fn.body_end});
      }
    }

    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Tok::Kind::kIdent) continue;
      const std::string& t = toks[i].text;
      if (!tok_is(toks, i + 1, "(")) continue;

      // Raw stale_view() outside the snapshot layer: bypasses the
      // access-audited serve path.
      if (t == "stale_view" && !in_buffer_layer) {
        result.findings.push_back(
            {path, toks[i].line, "RNO604",
             "raw SnapshotBuffer::stale_view() call; harnesses must serve "
             "adversaries through sim::serve_stale(buffer, now, lateness) "
             "so the view is access-audited"});
        continue;
      }
      if (t != "serve_stale" || in_buffer_layer) continue;

      const SiteRange* covering = nullptr;
      for (const SiteRange& range : ranges) {
        if (range.begin <= i && i < range.end) {
          covering = &range;
          break;
        }
      }
      if (covering == nullptr) {
        result.findings.push_back(
            {path, toks[i].line, "RNO604",
             "serve_stale() call outside any declared [[servesite]]; add "
             "the site to oracle.toml so its staleness arithmetic is "
             "pinned"});
        continue;
      }
      ++result.servesites_checked;
      const std::size_t close = match_bracket(toks, i + 1);
      if (close >= toks.size()) continue;
      const std::size_t args_begin = i + 2;
      const ServeSiteSpec& site = *covering->site;
      bool literal = false;
      for (std::size_t k = args_begin; k < close; ++k) {
        if (is_digit_tok(toks[k])) literal = true;
      }
      if (literal) {
        result.findings.push_back(
            {path, toks[i].line, "RNO604",
             "serve site '" + site.name +
                 "' passes a numeric literal to serve_stale; the lateness "
                 "must be the spec-pinned expression " + site.lateness});
      }
      if (!contains_token_run(toks, args_begin, close,
                              tokenize_expr(site.round_ident))) {
        result.findings.push_back(
            {path, toks[i].line, "RNO604",
             "serve site '" + site.name + "' does not pass the declared "
                 "round identifier '" + site.round_ident +
                 "' as `now`; serving anything else drifts the staleness "
                 "arithmetic"});
      }
      if (!contains_token_run(toks, args_begin, close,
                              tokenize_expr(site.lateness))) {
        result.findings.push_back(
            {path, toks[i].line, "RNO604",
             "serve site '" + site.name + "' does not pass the declared "
                 "lateness expression '" + site.lateness +
                 "'; hardcoded or missing lateness serves too-fresh views"});
      }
      // Retention pin: the serving function must raise the horizon so
      // capacity eviction can never starve this site.
      if (!spec_.horizon_method.empty()) {
        bool raises = false;
        for (std::size_t k = covering->begin; k < covering->end; ++k) {
          if (toks[k].kind == Tok::Kind::kIdent &&
              toks[k].text == spec_.horizon_method &&
              tok_is(toks, k + 1, "(")) {
            raises = true;
            break;
          }
        }
        if (!raises) {
          result.findings.push_back(
              {path, toks[i].line, "RNO604",
               "serve site '" + site.name + "' never calls " +
                   spec_.horizon_method +
                   "(); capacity eviction may silently starve the stale "
                   "view for large lateness"});
        }
      }
    }
  }

  // --- RNO605: adversary RNG stream discipline -----------------------------
  for (const auto& [path, toks] : tokens) {
    if (is_adversary(path)) continue;  // strategies split internally
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::Kind::kIdent ||
          strategies.count(toks[i].text) == 0) {
        continue;
      }
      // Construction shapes: `X(args)`, `X var(args)` and
      // `make_unique<X>(args)`.
      std::size_t open = 0;
      if (tok_is(toks, i + 1, "(")) {
        open = i + 1;
      } else if (tok_is(toks, i + 1, ">") && tok_is(toks, i + 2, "(")) {
        open = i + 2;
      } else if (i + 2 < toks.size() &&
                 toks[i + 1].kind == Tok::Kind::kIdent &&
                 textscan::cpp_keywords().count(toks[i + 1].text) == 0 &&
                 tok_is(toks, i + 2, "(")) {
        open = i + 2;
      } else {
        continue;
      }
      const std::size_t close = match_bracket(toks, open);
      if (close >= toks.size()) continue;
      for (std::size_t k = open + 1; k < close; ++k) {
        if (toks[k].kind != Tok::Kind::kIdent || toks[k].text != "Rng" ||
            !tok_is(toks, k + 1, "(")) {
          continue;
        }
        const std::size_t rng_close = match_bracket(toks, k + 1);
        if (rng_close >= close) break;
        bool derived = false;
        for (std::size_t m = k + 2; m < rng_close; ++m) {
          if (toks[m].kind == Tok::Kind::kIdent &&
              std::find(spec_.rng_derivations.begin(),
                        spec_.rng_derivations.end(),
                        toks[m].text) != spec_.rng_derivations.end()) {
            derived = true;
            break;
          }
        }
        if (!derived) {
          result.findings.push_back(
              {path, toks[k].line, "RNO605",
               "adversary '" + toks[i].text +
                   "' constructed with an inline Rng seed that is not "
                   "derived via split/trial_rng/derive_seed; the adversary "
                   "must draw from its own dedicated stream"});
        }
        k = rng_close;
      }
    }
  }

  // --- RNO610: spec drift ---------------------------------------------------
  if (!partial_) {
    for (const EntrypointSpec& ep : spec_.entrypoints) {
      auto it = tokens.find(ep.file);
      if (it == tokens.end()) {
        result.findings.push_back(
            {spec_path_, ep.line, "RNO610",
             "entrypoint '" + ep.name + "': file " + ep.file +
                 " is not in the tree"});
        continue;
      }
      const std::vector<Tok>& toks = it->second;
      bool iface = false;
      bool method = false;
      bool view = ep.view.empty();
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != Tok::Kind::kIdent) continue;
        if (toks[i].text == ep.interface && i > 0 &&
            (toks[i - 1].text == "class" || toks[i - 1].text == "struct")) {
          iface = true;
        }
        if (toks[i].text == ep.method && tok_is(toks, i + 1, "(")) {
          method = true;
        }
        if (!view && toks[i].text == ep.view) view = true;
      }
      if (!iface) {
        result.findings.push_back(
            {spec_path_, ep.line, "RNO610",
             "entrypoint '" + ep.name + "': interface " + ep.interface +
                 " not found in " + ep.file});
      } else if (!method) {
        result.findings.push_back(
            {spec_path_, ep.line, "RNO610",
             "entrypoint '" + ep.name + "': method " + ep.method +
                 " not found in " + ep.file});
      } else if (!view) {
        result.findings.push_back(
            {spec_path_, ep.line, "RNO610",
             "entrypoint '" + ep.name + "': view type " + ep.view +
                 " not referenced in " + ep.file +
                 " — the entry point no longer consumes the declared view"});
      }
    }
    for (const ServeSiteSpec& site : spec_.servesites) {
      auto it = tokens.find(site.file);
      if (it == tokens.end()) {
        result.findings.push_back(
            {spec_path_, site.line, "RNO610",
             "servesite '" + site.name + "': file " + site.file +
                 " is not in the tree"});
        continue;
      }
      const std::vector<FunctionBody> fns =
          find_functions(it->second, site.function);
      if (fns.empty()) {
        result.findings.push_back(
            {spec_path_, site.line, "RNO610",
             "servesite '" + site.name + "': function " + site.function +
                 " not found in " + site.file});
        continue;
      }
      bool serves = false;
      for (const FunctionBody& fn : fns) {
        for (std::size_t k = fn.body_begin; k < fn.body_end && !serves; ++k) {
          if (it->second[k].kind == Tok::Kind::kIdent &&
              it->second[k].text == "serve_stale") {
            serves = true;
          }
        }
      }
      if (!serves) {
        result.findings.push_back(
            {spec_path_, site.line, "RNO610",
             "servesite '" + site.name + "': " + site.function + " in " +
                 site.file + " no longer calls serve_stale (dead site; "
                 "delete or update the entry)"});
      }
    }
    if (!spec_.buffer_file.empty()) {
      auto it = tokens.find(spec_.buffer_file);
      if (it == tokens.end()) {
        result.findings.push_back(
            {spec_path_, spec_.snapshot_line, "RNO610",
             "[snapshot] buffer_file " + spec_.buffer_file +
                 " is not in the tree"});
      } else if (!spec_.horizon_method.empty()) {
        bool found = false;
        for (const Tok& tok : it->second) {
          if (tok.kind == Tok::Kind::kIdent &&
              tok.text == spec_.horizon_method) {
            found = true;
            break;
          }
        }
        if (!found) {
          result.findings.push_back(
              {spec_path_, spec_.snapshot_line, "RNO610",
               "[snapshot] retention pin broken: " + spec_.buffer_file +
                   " no longer declares " + spec_.horizon_method +
                   " (capacity-only eviction can starve t-late views)"});
        }
      }
    }
  }

  // Suppressions: drop findings covered by an inline allow; flag malformed
  // suppression comments; honour [allow] path carve-outs.
  std::vector<Finding> kept;
  for (Finding& finding : result.findings) {
    if (allowed(finding.rule, finding.file)) {
      ++result.suppressed;
      result.suppressed_findings.push_back(std::move(finding));
      continue;
    }
    kept.push_back(std::move(finding));
  }
  result.findings = std::move(kept);

  for (const auto& [path, file] : files_) {
    const textscan::LineSuppressions sup =
        textscan::collect_suppressions(file, "reconfnet-oraclecheck:", "RNO");
    for (std::size_t line : sup.malformed) {
      if (allowed("RNO690", path)) continue;
      result.findings.push_back(
          {path, line, "RNO690",
           "malformed reconfnet-oraclecheck suppression (want "
           "'reconfnet-oraclecheck: allow(RNOnnn) reason')"});
    }
    std::set<std::pair<std::size_t, std::string>> used;
    if (!sup.allow.empty()) {
      std::vector<Finding> remaining;
      for (Finding& finding : result.findings) {
        if (finding.file == path) {
          auto it = sup.allow.find(finding.line);
          if (it != sup.allow.end() && it->second.count(finding.rule) != 0) {
            ++result.suppressed;
            used.insert({finding.line, finding.rule});
            result.suppressed_findings.push_back(std::move(finding));
            continue;
          }
        }
        remaining.push_back(std::move(finding));
      }
      result.findings = std::move(remaining);
    }
    const auto stale = textscan::stale_suppressions(path, sup, used);
    result.stale.insert(result.stale.end(), stale.begin(), stale.end());
  }

  textscan::sort_and_dedupe(result.findings);
  textscan::sort_and_dedupe(result.suppressed_findings);
  return result;
}

}  // namespace reconfnet::oraclecheck
