// reconfnet_oraclecheck — t-late adversary information-flow analyzer for the
// reconfnet tree.
//
// Every result in the paper rests on the Section 1.1 adversary model: an
// r-bounded, t-late adversary sees the overlay topology *only* as a snapshot
// at least t rounds stale — never live node state, message contents, or
// fresh edges. Before this fifth zero-dependency checker (on the shared
// tools/lint/textscan machinery, like reconfnet_lint, reconfnet_protocheck,
// reconfnet_hotcheck and reconfnet_racecheck) that boundary was enforced
// only by comments. The spec, tools/oraclecheck/oracle.toml, declares:
//
//   [surface]      the adversary file prefixes, their permitted quoted
//                  includes, banned live-state type names, the identifiers
//                  that sanction an inline Rng seed, known-global mutable
//                  state, and the harness prefixes exempt from RNO603.
//   [[entrypoint]] one entry per adversary interface: file, abstract base
//                  class, entry method, and the view type it consumes.
//   [[servesite]]  one entry per sanctioned harness serve site: file,
//                  enclosing function, the live round identifier and the
//                  lateness expression that sim::serve_stale must be called
//                  with, verbatim.
//   [snapshot]     the SnapshotBuffer retention-policy pin: retention mode
//                  and the horizon method every serve site must call.
//   [options]      `roots`: path prefixes walked by the tree gate.
//   [allow]        rule id -> path prefixes where the rule is off wholesale.
//
// Rules (each finding prints `file:line: RNOxxx message`):
//
//   RNO601  adversary TU includes a header outside the permitted surface, or
//           references a live-state type name (bus, work meter, group table)
//   RNO602  adversary code reaches for the snapshot machinery itself:
//           SnapshotBuffer, latest()/stale_view()/serve_stale() calls, or
//           TopologySnapshot construction, instead of consuming the
//           harness-served stale view
//   RNO603  reverse isolation: protocol code (src/ outside the declared
//           harness prefixes) includes an adversary header or names a
//           concrete adversary strategy
//   RNO604  staleness-arithmetic drift: a raw stale_view() call outside the
//           snapshot layer, a serve_stale() call outside a declared serve
//           site, or a declared serve site whose arguments are not exactly
//           the spec-pinned (round, lateness) — literals and `now` serve
//           fresh views; also fires when a serve site fails to raise the
//           retention horizon before serving
//   RNO605  adversary strategy constructed with an inline Rng(...) seed that
//           is not derived via split/trial_rng/derive_seed from a master
//           seed: the adversary must draw from its own dedicated stream
//   RNO606  adversary code reaches known-global mutable state, directly or
//           through a same-file callee (one-level call-graph walk): shared
//           globals are a covert channel between adversary and protocol
//   RNO610  oracle.toml drift: an entrypoint or serve site that no longer
//           matches the tree, or a broken snapshot retention pin
//   RNO690  malformed reconfnet-oraclecheck suppression comment
//
// Suppressions: `// reconfnet-oraclecheck: allow(RNOnnn) reason` on the
// offending line or alone on the line above (oracle.toml carves RNO690 out
// of tools/oraclecheck/ so this very paragraph does not trip the scanner).
// The dynamic half of the checker is sim::StaleSnapshotView
// (src/sim/stale_view.hpp): under RECONFNET_ORACLEAUDIT every snapshot read
// re-asserts now - snapshot.round >= t via audit::check_adversary_lateness,
// and the leak-probe test (tests/adversary_test.cpp) replays adversaries to
// prove their output is a function of (stale view, universe, budget, own
// state) only.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "../lint/textscan.hpp"

namespace reconfnet::oraclecheck {

using textscan::Finding;
using textscan::SourceFile;
using textscan::strip_source;

/// One [[entrypoint]] entry: an adversary interface the harness drives.
struct EntrypointSpec {
  std::string name;
  std::string file;       ///< adversary header declaring the interface
  std::string interface;  ///< abstract base class name
  std::string method;     ///< virtual entry method name
  std::string view;       ///< view type the method consumes ("" = unchecked)
  std::size_t line = 0;   ///< line in oracle.toml
};

/// One [[servesite]] entry: a sanctioned harness serve site.
struct ServeSiteSpec {
  std::string name;
  std::string file;          ///< harness TU containing the site
  std::string function;      ///< enclosing function
  std::string round_ident;   ///< live round identifier served as `now`
  std::string lateness;      ///< lateness expression, verbatim (e.g. "attack.lateness")
  std::size_t line = 0;      ///< line in oracle.toml
};

struct Spec {
  std::vector<std::string> roots = {"src/", "bench/", "tools/"};
  /// Path prefixes holding adversary code.
  std::vector<std::string> adversary_paths;
  /// Quoted-include prefixes adversary code may pull in.
  std::vector<std::string> permitted_includes;
  /// Live-state type names banned from adversary TUs.
  std::vector<std::string> live_state;
  /// Identifiers sanctioning an inline Rng(...) seed (RNO605).
  std::vector<std::string> rng_derivations;
  /// Known-global mutable identifiers for RNO606; `g_` prefix is built in.
  std::vector<std::string> globals;
  /// Harness prefixes exempt from RNO603.
  std::vector<std::string> harness_paths;
  /// [snapshot] retention pin.
  std::string retention;
  std::string buffer_file;
  std::string horizon_method;
  std::size_t snapshot_line = 0;  ///< line of the [snapshot] section
  std::vector<EntrypointSpec> entrypoints;
  std::vector<ServeSiteSpec> servesites;
  /// rule id -> path prefixes where the rule is switched off wholesale.
  std::map<std::string, std::vector<std::string>> allow;
};

/// Parses oracle.toml. Returns false and fills `error` on malformed input
/// (unknown sections/keys, missing required fields).
bool parse_spec(const std::string& text, Spec& spec, std::string& error);

/// The static rule catalogue (--list-rules output).
const std::vector<textscan::RuleInfo>& rules();

class Driver {
 public:
  /// `spec_path` is where spec-anchored findings (RNO610) are reported; it
  /// defaults to the canonical location.
  explicit Driver(Spec spec,
                  std::string spec_path = "tools/oraclecheck/oracle.toml");

  /// Registers a file for the run. Paths must be repo-relative with '/'
  /// separators; contents are stripped immediately.
  void add_file(const std::string& path, const std::string& content);

  /// Partial runs (an explicit file list instead of the full tree) skip the
  /// drift checks (RNO610) for entrypoint/servesite files that were not
  /// registered.
  void set_partial(bool partial);

  struct Result {
    std::vector<Finding> findings;  // sorted by (file, line, rule)
    /// Findings dropped by an inline allow or an [allow] carve-out, kept for
    /// SARIF suppression records.
    std::vector<Finding> suppressed_findings;
    /// Inline suppression comments whose rule no longer fires on the line
    /// they cover (the --stale-suppressions report).
    std::vector<textscan::StaleSuppression> stale;
    std::size_t files_checked = 0;
    std::size_t suppressed = 0;
    std::size_t adversary_files = 0;   ///< files under adversary paths
    std::size_t servesites_checked = 0;
  };

  /// Runs every rule over the registered files. Deterministic: files are
  /// processed in sorted path order and findings are sorted.
  Result run();

 private:
  [[nodiscard]] bool allowed(const std::string& rule,
                             const std::string& path) const;

  Spec spec_;
  std::string spec_path_;
  bool partial_ = false;
  std::map<std::string, SourceFile> files_;
};

}  // namespace reconfnet::oraclecheck
