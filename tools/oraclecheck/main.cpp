// reconfnet_oraclecheck CLI. See oraclecheck.hpp for the rule catalogue.
//
// Usage:
//   reconfnet_oraclecheck [--root DIR] [--spec FILE] [--sarif FILE]
//                         [--stale-suppressions] [file...]
//
//   --root DIR    repository root (default: current directory). All paths
//                 are interpreted and reported relative to it.
//   --spec FILE   adversary information-flow spec (default:
//                 ROOT/tools/oraclecheck/oracle.toml)
//   --sarif FILE  also write the findings as SARIF 2.1.0 (for the CI
//                 code-scanning upload); does not change the exit status
//   --stale-suppressions
//                 report only inline allow() comments whose rule no longer
//                 fires on the line they cover; always exits 0 (a
//                 housekeeping report, not a gate)
//   file...       check exactly these files instead of walking the spec's
//                 roots; partial runs skip the spec-drift checks (fixture
//                 files under tests/oraclecheck_fixtures/ are only
//                 reachable this way)
//
// Exit status: 0 clean, 1 findings, 2 usage/configuration error.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "oraclecheck.hpp"

namespace fs = std::filesystem;

namespace {

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

bool checkable_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

std::string repo_relative(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  const fs::path canonical = fs::weakly_canonical(path, ec);
  const fs::path canonical_root = fs::weakly_canonical(root, ec);
  const fs::path rel = canonical.lexically_relative(canonical_root);
  return rel.generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path spec_path;
  fs::path sarif_path;
  bool stale_mode = false;
  std::vector<std::string> explicit_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "reconfnet_oraclecheck: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = next("--root");
    } else if (arg == "--spec") {
      spec_path = next("--spec");
    } else if (arg == "--sarif") {
      sarif_path = next("--sarif");
    } else if (arg == "--stale-suppressions") {
      stale_mode = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: reconfnet_oraclecheck [--root DIR] [--spec FILE] "
                   "[--sarif FILE] [--stale-suppressions] [--version] "
                   "[--list-rules] [file...]\n";
      return 0;
    } else if (reconfnet::textscan::handle_standard_flag(
                   arg, "reconfnet_oraclecheck",
                   reconfnet::oraclecheck::rules(), std::cout)) {
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "reconfnet_oraclecheck: unknown option " << arg << "\n";
      return 2;
    } else {
      explicit_files.push_back(arg);
    }
  }
  if (spec_path.empty()) spec_path = root / "tools/oraclecheck/oracle.toml";

  std::string spec_text;
  if (!read_file(spec_path, spec_text)) {
    std::cerr << "reconfnet_oraclecheck: cannot read spec " << spec_path
              << "\n";
    return 2;
  }
  reconfnet::oraclecheck::Spec spec;
  std::string error;
  if (!reconfnet::oraclecheck::parse_spec(spec_text, spec, error)) {
    std::cerr << "reconfnet_oraclecheck: bad spec: " << error << "\n";
    return 2;
  }

  std::set<std::string> paths;
  if (explicit_files.empty()) {
    for (const std::string& prefix : spec.roots) {
      const fs::path base = root / prefix;
      if (!fs::exists(base)) continue;
      for (auto it = fs::recursive_directory_iterator(base);
           it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file() || !checkable_extension(it->path()))
          continue;
        const std::string rel = repo_relative(it->path(), root);
        if (rel.find("_fixtures") != std::string::npos) continue;
        paths.insert(rel);
      }
    }
  } else {
    for (const std::string& file : explicit_files) {
      const fs::path p = fs::path(file).is_absolute() ? fs::path(file)
                                                      : root / file;
      if (!fs::exists(p)) {
        std::cerr << "reconfnet_oraclecheck: no such file: " << file << "\n";
        return 2;
      }
      paths.insert(repo_relative(p, root));
    }
  }
  if (paths.empty()) {
    std::cerr << "reconfnet_oraclecheck: no input files\n";
    return 2;
  }

  reconfnet::oraclecheck::Driver driver(std::move(spec),
                                        repo_relative(spec_path, root));
  driver.set_partial(!explicit_files.empty());
  for (const std::string& rel : paths) {
    std::string content;
    if (!read_file(root / rel, content)) {
      std::cerr << "reconfnet_oraclecheck: cannot read " << rel << "\n";
      return 2;
    }
    driver.add_file(rel, content);
  }

  const auto result = driver.run();
  if (stale_mode) {
    for (const auto& stale : result.stale) {
      std::cout << stale.file << ":" << stale.line << ": stale suppression "
                << "allow(" << stale.rule << ") — the rule no longer fires "
                << "on the line it covers\n";
    }
    std::cerr << "reconfnet_oraclecheck: " << result.stale.size()
              << " stale suppressions\n";
    return 0;
  }
  for (const reconfnet::oraclecheck::Finding& finding : result.findings) {
    std::cout << finding.file << ":" << finding.line << ": " << finding.rule
              << " " << finding.message << "\n";
  }
  if (!sarif_path.empty()) {
    std::ofstream sarif(sarif_path, std::ios::binary);
    if (!sarif) {
      std::cerr << "reconfnet_oraclecheck: cannot write " << sarif_path
                << "\n";
      return 2;
    }
    reconfnet::textscan::write_sarif(sarif, "reconfnet_oraclecheck",
                                     "tools/oraclecheck/oraclecheck.hpp",
                                     result.findings,
                                     result.suppressed_findings);
  }
  std::cerr << "reconfnet_oraclecheck: " << result.files_checked << " files, "
            << result.adversary_files << " adversary files, "
            << result.servesites_checked << " serve sites, "
            << result.findings.size() << " findings (" << result.suppressed
            << " suppressed)\n";
  return result.findings.empty() ? 0 : 1;
}
