// reconfnet_racecheck — concurrency-safety & determinism-under-parallelism
// analyzer for the reconfnet tree.
//
// The whole parallel-runtime correctness story (DESIGN.md §7) rests on the
// PR-2 discipline: per-trial/per-shard seed splitting, no shared mutable
// captures, and only commutative-or-ordered reductions, so `--jobs N` stays
// byte-identical to serial. Before the million-node sharded-bus refactor
// (ROADMAP item 1) multiplies the number of parallel regions, this fourth
// zero-dependency checker (on the shared tools/lint/textscan machinery, like
// reconfnet_lint, reconfnet_protocheck and reconfnet_hotcheck) makes that
// discipline machine-checked. The spec, tools/racecheck/concurrency.toml,
// declares:
//
//   [[spawn]]   one entry per parallel-dispatch call-site family: the callee
//               identifier (`parallel_for`, `run`, `run_trials`, `submit`,
//               `sweep`), an optional receiver type for member calls
//               (`TrialRunner`, `ThreadPool`, `Context`), which argument
//               carries the parallel callable, and how the body learns its
//               shard index (`param` = last lambda parameter, `context` =
//               a TrialContext& parameter, `none` = no index).
//   [[region]]  one entry per sanctioned dispatch site: the file + enclosing
//               function (or a `file_prefix` for a family of sites, e.g.
//               every bench sweep), the spawn family, the declared per-shard
//               `slots` (containers the body may write through the shard
//               index) and `readonly` names it may capture by reference.
//   [shared]    `readonly_types`: types safe to capture by const reference
//               into any region; `globals`: known-global mutable state that
//               parallel bodies must not reach (RNR506).
//   [options]   `roots`: path prefixes walked by the tree gate.
//   [allow]     rule id -> path prefixes where the rule is off wholesale.
//
// Rules (each finding prints `file:line: RNRxxx message`):
//
//   RNR501  a parallel-region lambda mutates (or explicitly captures by
//           reference) enclosing-scope state that is not a declared per-shard
//           slot or sanctioned read-only name
//   RNR502  Rng constructed or used inside a parallel region without a
//           .split(index) / trial_rng / derive_seed derivation from the
//           region's master seed
//   RNR503  mutation of a container indexed by anything other than the
//           shard/trial index inside a parallel body
//   RNR504  completion-order-dependent merging: push_back/insert into a
//           shared container from the body instead of writing slot[index]
//   RNR505  mutex/atomic/thread primitive introduced in src/ outside
//           src/runtime/ (ad-hoc synchronization breaks the determinism
//           model; flag it, require a reasoned suppression)
//   RNR506  a parallel body touches known-global mutable state, directly or
//           through a same-file callee (one-level call-graph walk)
//   RNR510  concurrency.toml drift: an undeclared dispatch site, or a
//           declared region whose file/function/site no longer exists
//   RNR590  malformed reconfnet-racecheck suppression comment
//
// Suppressions: `// reconfnet-racecheck: allow(RNRnnn) reason` on the
// offending line or alone on the line above (concurrency.toml carves RNR590
// out of tools/racecheck/ so this very paragraph does not trip the scanner). The dynamic half of the checker
// lives in src/runtime/racecheck.{hpp,cpp}: a logical ownership tracker and
// the schedule-perturbation replay harness (tests/racecheck_replay_test.cpp)
// prove at runtime what these rules approximate statically.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "../lint/textscan.hpp"

namespace reconfnet::racecheck {

using textscan::Finding;
using textscan::SourceFile;
using textscan::strip_source;

/// One [[spawn]] entry: a family of parallel-dispatch call sites.
struct SpawnSpec {
  std::string name;      ///< family name ("parallel-for", "trial-runner", ...)
  std::string callee;    ///< callee identifier at the call site
  std::string receiver;  ///< receiver type for member calls; empty = free call
  /// Which call argument carries the parallel callable: "last" (default) or
  /// a 1-based position.
  std::string arg = "last";
  /// How the body learns its shard index: "param" (the lambda's last
  /// parameter is the shard index), "context" (a TrialContext& parameter
  /// carries .index/.rng), or "none" (no per-shard index, e.g. raw submit).
  std::string index = "param";
  std::size_t line = 0;  ///< line in concurrency.toml
};

/// One [[region]] entry: a sanctioned dispatch site (or site family).
struct RegionSpec {
  std::string name;
  std::string file;         ///< exact file (with `function`), or empty
  std::string file_prefix;  ///< prefix form: every site under it is covered
  std::string function;     ///< enclosing function for the exact-file form
  std::string spawn;        ///< spawn family name this region sanctions
  std::vector<std::string> slots;     ///< per-shard slot container names
  std::vector<std::string> readonly;  ///< names safe to capture by reference
  std::size_t line = 0;               ///< line in concurrency.toml
};

struct Spec {
  std::vector<std::string> roots = {"src/", "bench/", "tools/"};
  /// Types whose instances are safe to capture by (const) reference into any
  /// parallel region (immutable config blocks etc.).
  std::vector<std::string> readonly_types;
  /// Known-global mutable state identifiers for RNR506; identifiers starting
  /// with `g_` are always treated as globals.
  std::vector<std::string> globals;
  std::vector<SpawnSpec> spawns;
  std::vector<RegionSpec> regions;
  /// rule id -> path prefixes where the rule is switched off wholesale.
  std::map<std::string, std::vector<std::string>> allow;
};

/// Parses concurrency.toml. Returns false and fills `error` on malformed
/// input (unknown sections/keys, missing required fields, bad spawn/region
/// cross-references).
bool parse_spec(const std::string& text, Spec& spec, std::string& error);

/// The static rule catalogue (--list-rules output).
const std::vector<textscan::RuleInfo>& rules();

class Driver {
 public:
  /// `spec_path` is where spec-anchored findings (RNR510) are reported; it
  /// defaults to the canonical location.
  explicit Driver(Spec spec,
                  std::string spec_path = "tools/racecheck/concurrency.toml");

  /// Registers a file for the run. Paths must be repo-relative with '/'
  /// separators; contents are stripped immediately.
  void add_file(const std::string& path, const std::string& content);

  /// Partial runs (an explicit file list instead of the full tree) skip the
  /// drift checks (RNR510) for region files that were not registered.
  void set_partial(bool partial);

  struct Result {
    std::vector<Finding> findings;  // sorted by (file, line, rule)
    /// Findings dropped by an inline allow or an [allow] carve-out, kept for
    /// SARIF suppression records.
    std::vector<Finding> suppressed_findings;
    /// Inline suppression comments whose rule no longer fires on the line
    /// they cover (the --stale-suppressions report).
    std::vector<textscan::StaleSuppression> stale;
    std::size_t files_checked = 0;
    std::size_t suppressed = 0;
    std::size_t sites_checked = 0;    ///< dispatch sites found
    std::size_t lambdas_checked = 0;  ///< parallel callables analyzed
  };

  /// Runs every rule over the registered files. Deterministic: files are
  /// processed in sorted path order and findings are sorted.
  Result run();

 private:
  [[nodiscard]] bool allowed(const std::string& rule,
                             const std::string& path) const;

  Spec spec_;
  std::string spec_path_;
  bool partial_ = false;
  std::map<std::string, SourceFile> files_;
};

}  // namespace reconfnet::racecheck
