#include "racecheck.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace reconfnet::racecheck {

using textscan::FunctionBody;
using textscan::Tok;
using textscan::bracket_is_close;
using textscan::bracket_is_open;
using textscan::find_functions;
using textscan::match_bracket;
using textscan::skip_angles;
using textscan::tok_is;
using textscan::tokenize;

// ---------------------------------------------------------------------------
// Rule catalogue

const std::vector<textscan::RuleInfo>& rules() {
  static const std::vector<textscan::RuleInfo> kRules = {
      {"RNR501", "parallel lambda mutates shared state outside declared "
                 "slots"},
      {"RNR502", "Rng in a parallel region without split/derive from the "
                 "shard index"},
      {"RNR503", "container mutation indexed by something other than the "
                 "shard index"},
      {"RNR504", "completion-order merge (push into shared container) in a "
                 "parallel body"},
      {"RNR505", "ad-hoc synchronization primitive in src/ outside "
                 "src/runtime/"},
      {"RNR506", "parallel body reaches known-global mutable state"},
      {"RNR510", "concurrency.toml drift (undeclared site or dead region)"},
      {"RNR590", "malformed reconfnet-racecheck suppression"},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// Spec parsing

namespace {

bool fill_spawn(const textscan::TomlSection& section, SpawnSpec& spawn,
                std::string& error) {
  spawn.line = section.line;
  for (const auto& entry : section.entries) {
    if (entry.is_array) {
      error = "line " + std::to_string(entry.line) + ": spawn key " +
              entry.key + " needs a string";
      return false;
    }
    if (entry.key == "name") {
      spawn.name = entry.scalar;
    } else if (entry.key == "callee") {
      spawn.callee = entry.scalar;
    } else if (entry.key == "receiver") {
      spawn.receiver = entry.scalar;
    } else if (entry.key == "arg") {
      spawn.arg = entry.scalar;
    } else if (entry.key == "index") {
      if (entry.scalar != "param" && entry.scalar != "context" &&
          entry.scalar != "none") {
        error = "line " + std::to_string(entry.line) +
                ": spawn index must be param, context or none";
        return false;
      }
      spawn.index = entry.scalar;
    } else if (entry.key == "note") {
      // Documentation only.
    } else {
      error = "line " + std::to_string(entry.line) + ": unknown spawn key " +
              entry.key;
      return false;
    }
  }
  if (spawn.name.empty() || spawn.callee.empty()) {
    error = "line " + std::to_string(section.line) +
            ": [[spawn]] needs name and callee";
    return false;
  }
  if (spawn.arg != "last") {
    for (const char c : spawn.arg) {
      if (c < '0' || c > '9') {
        error = "line " + std::to_string(section.line) +
                ": spawn arg must be \"last\" or a 1-based position";
        return false;
      }
    }
  }
  return true;
}

bool fill_region(const textscan::TomlSection& section, RegionSpec& region,
                 std::string& error) {
  region.line = section.line;
  for (const auto& entry : section.entries) {
    const bool want_array = entry.key == "slots" || entry.key == "readonly";
    if (want_array != entry.is_array) {
      error = "line " + std::to_string(entry.line) + ": region key " +
              entry.key + (want_array ? " needs an array" : " needs a string");
      return false;
    }
    if (entry.key == "name") {
      region.name = entry.scalar;
    } else if (entry.key == "file") {
      region.file = entry.scalar;
    } else if (entry.key == "file_prefix") {
      region.file_prefix = entry.scalar;
    } else if (entry.key == "function") {
      region.function = entry.scalar;
    } else if (entry.key == "spawn") {
      region.spawn = entry.scalar;
    } else if (entry.key == "slots") {
      region.slots = entry.items;
    } else if (entry.key == "readonly") {
      region.readonly = entry.items;
    } else if (entry.key == "note") {
      // Documentation only.
    } else {
      error = "line " + std::to_string(entry.line) + ": unknown region key " +
              entry.key;
      return false;
    }
  }
  const bool exact = !region.file.empty();
  const bool prefix = !region.file_prefix.empty();
  if (exact == prefix) {
    error = "line " + std::to_string(section.line) +
            ": [[region]] needs exactly one of file or file_prefix";
    return false;
  }
  if (exact && region.function.empty()) {
    error = "line " + std::to_string(section.line) +
            ": [[region]] with file needs function";
    return false;
  }
  if (region.spawn.empty()) {
    error = "line " + std::to_string(section.line) + ": [[region]] needs spawn";
    return false;
  }
  if (region.name.empty()) {
    region.name = exact ? region.file + ":" + region.function
                        : region.file_prefix;
  }
  return true;
}

}  // namespace

bool parse_spec(const std::string& text, Spec& spec, std::string& error) {
  spec = Spec{};
  std::vector<textscan::TomlSection> sections;
  if (!textscan::parse_toml_subset(text, sections, error)) return false;
  for (const auto& section : sections) {
    if (section.is_array_of_tables && section.name == "spawn") {
      SpawnSpec spawn;
      if (!fill_spawn(section, spawn, error)) return false;
      spec.spawns.push_back(std::move(spawn));
    } else if (section.is_array_of_tables && section.name == "region") {
      RegionSpec region;
      if (!fill_region(section, region, error)) return false;
      spec.regions.push_back(std::move(region));
    } else if (!section.is_array_of_tables && section.name == "options") {
      for (const auto& entry : section.entries) {
        if (entry.key == "roots" && entry.is_array) {
          spec.roots = entry.items;
        } else {
          error = "line " + std::to_string(entry.line) + ": unknown option " +
                  entry.key;
          return false;
        }
      }
    } else if (!section.is_array_of_tables && section.name == "shared") {
      for (const auto& entry : section.entries) {
        if (entry.key == "readonly_types" && entry.is_array) {
          spec.readonly_types = entry.items;
        } else if (entry.key == "globals" && entry.is_array) {
          spec.globals = entry.items;
        } else {
          error = "line " + std::to_string(entry.line) +
                  ": unknown shared key " + entry.key;
          return false;
        }
      }
    } else if (!section.is_array_of_tables && section.name == "allow") {
      for (const auto& entry : section.entries) {
        if (!entry.is_array) {
          error = "line " + std::to_string(entry.line) + ": bad allow array";
          return false;
        }
        spec.allow[entry.key] = entry.items;
      }
    } else {
      error = "line " + std::to_string(section.line) + ": unknown section " +
              section.name;
      return false;
    }
  }
  std::set<std::string> spawn_names;
  for (const SpawnSpec& spawn : spec.spawns) {
    if (!spawn_names.insert(spawn.name).second) {
      error = "line " + std::to_string(spawn.line) + ": duplicate spawn " +
              spawn.name;
      return false;
    }
  }
  for (const RegionSpec& region : spec.regions) {
    if (spawn_names.count(region.spawn) == 0) {
      error = "line " + std::to_string(region.line) + ": region " +
              region.name + " references unknown spawn " + region.spawn;
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Token-level helpers

namespace {

/// Punctuation that can precede a free-function call (never a definition).
bool call_preceder_punct(const std::string& t) {
  return t == ";" || t == "{" || t == "}" || t == "(" || t == "," ||
         t == "=" || t == "?" || t == ":" || t == "::" || t == "!";
}

/// Member functions whose call mutates the receiver.
const std::set<std::string>& mutating_members() {
  static const std::set<std::string> kMut = {
      "push_back", "emplace_back", "emplace",     "emplace_front",
      "insert",    "try_emplace",  "insert_or_assign",
      "erase",     "clear",        "resize",      "reserve",
      "assign",    "push",         "pop",         "pop_back",
      "pop_front", "push_front",   "append",      "store",
      "fetch_add", "fetch_sub",    "exchange",    "swap",
      "merge",     "splice",       "next",        "shuffle"};
  return kMut;
}

/// The completion-order subset of the mutators: growing a shared container
/// from a parallel body makes the result depend on task finish order.
const std::set<std::string>& push_like_members() {
  static const std::set<std::string> kPush = {
      "push_back", "emplace_back", "emplace", "emplace_front",
      "insert",    "push",         "push_front", "append", "merge",
      "splice"};
  return kPush;
}

/// std:: synchronization primitives flagged by RNR505.
const std::set<std::string>& sync_idents() {
  static const std::set<std::string> kSync = {
      "mutex",
      "recursive_mutex",
      "timed_mutex",
      "shared_mutex",
      "atomic",
      "atomic_flag",
      "atomic_bool",
      "atomic_int",
      "atomic_uint64_t",
      "atomic_size_t",
      "condition_variable",
      "condition_variable_any",
      "thread",
      "jthread",
      "lock_guard",
      "unique_lock",
      "scoped_lock",
      "shared_lock",
      "future",
      "promise",
      "packaged_task",
      "counting_semaphore",
      "binary_semaphore",
      "barrier",
      "latch",
      "call_once",
      "once_flag"};
  return kSync;
}

/// Type-ish keywords that may precede a local declaration's name.
const std::set<std::string>& type_keywords() {
  static const std::set<std::string> kTypes = {
      "auto", "bool", "char", "const", "double", "float",
      "int",  "long", "short", "signed", "unsigned"};
  return kTypes;
}

/// Sanctioned identifiers in an Rng initializer: these derive the stream
/// from the region's master seed and shard index (the PR-2 discipline).
const std::set<std::string>& rng_derivations() {
  static const std::set<std::string> kDerive = {"split", "trial_rng",
                                                "derive_seed"};
  return kDerive;
}

/// One parsed parallel callable (a lambda, inline or name-resolved).
struct Lambda {
  bool valid = false;
  bool default_ref = false;  // [&...]
  bool default_val = false;  // [=...]
  std::set<std::string> ref_captures;  // explicit &name captures
  std::set<std::string> val_captures;  // explicit by-value / init captures
  std::vector<std::pair<std::string, std::string>> params;  // (type, name)
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  std::size_t line = 0;
};

/// Parses the lambda whose `[` capture list starts at token `open`.
Lambda parse_lambda(const std::vector<Tok>& toks, std::size_t open) {
  Lambda out;
  if (!tok_is(toks, open, "[")) return out;
  const std::size_t cap_close = match_bracket(toks, open);
  if (cap_close >= toks.size()) return out;
  out.line = toks[open].line;

  // Capture list: split on top-level commas.
  std::size_t item = open + 1;
  while (item < cap_close) {
    std::size_t end = item;
    int depth = 0;
    while (end < cap_close) {
      if (bracket_is_open(toks[end].text)) ++depth;
      if (bracket_is_close(toks[end].text)) --depth;
      if (depth == 0 && toks[end].text == ",") break;
      ++end;
    }
    if (item < end) {
      if (toks[item].text == "&" && end == item + 1) {
        out.default_ref = true;
      } else if (toks[item].text == "=" && end == item + 1) {
        out.default_val = true;
      } else if (toks[item].text == "&" && end > item + 1) {
        out.ref_captures.insert(toks[item + 1].text);
      } else if (toks[item].text == "this" ||
                 (toks[item].text == "*" && tok_is(toks, item + 1, "this"))) {
        // Member state reached through `this` shows up as non-local idents;
        // the mutation analysis handles it like any other shared capture.
      } else if (toks[item].kind == Tok::Kind::kIdent) {
        // `name` or `name = expr` init capture: a by-value copy, local to
        // the closure.
        out.val_captures.insert(toks[item].text);
      }
    }
    item = end + 1;
  }

  // Parameter list (optional).
  std::size_t j = cap_close + 1;
  if (tok_is(toks, j, "(")) {
    const std::size_t params_close = match_bracket(toks, j);
    if (params_close >= toks.size()) return out;
    std::size_t p = j + 1;
    while (p < params_close) {
      std::size_t end = p;
      int depth = 0;
      while (end < params_close) {
        const std::string& t = toks[end].text;
        if (bracket_is_open(t) || t == "<") ++depth;
        if (bracket_is_close(t) || t == ">") --depth;
        if (depth == 0 && t == ",") break;
        ++end;
      }
      // The parameter name is the last identifier of the slice; its type is
      // every identifier before it joined (enough for `TrialContext&` and
      // `std::size_t` checks).
      std::string type;
      std::string name;
      for (std::size_t k = p; k < end; ++k) {
        if (toks[k].kind != Tok::Kind::kIdent) continue;
        if (!name.empty()) type += (type.empty() ? "" : " ") + name;
        name = toks[k].text;
      }
      if (!name.empty()) out.params.emplace_back(type, name);
      p = end + 1;
    }
    j = params_close + 1;
  }

  // Skip specifiers (mutable, noexcept, trailing return) to the body brace.
  while (j < toks.size() && toks[j].text != "{") {
    if (toks[j].text == "(") {
      j = match_bracket(toks, j);
      if (j >= toks.size()) return out;
      ++j;
      continue;
    }
    if (toks[j].text == "<") {
      j = skip_angles(toks, j);
      continue;
    }
    if (toks[j].text == ";" || toks[j].text == ")" || toks[j].text == ",") {
      return out;  // not a lambda body after all (e.g. array subscript)
    }
    ++j;
  }
  if (j >= toks.size()) return out;
  const std::size_t body_close = match_bracket(toks, j);
  if (body_close >= toks.size()) return out;
  out.body_begin = j + 1;
  out.body_end = body_close;
  out.valid = true;
  return out;
}

/// One mutation of a (possibly member-accessed, possibly indexed) lvalue
/// chain found in a body. `base` is the chain's first identifier.
struct Mutation {
  std::string base;
  std::size_t line = 0;
  bool indexed = false;
  std::vector<std::string> index_toks;  // tokens of the FIRST subscript
  std::string member;                   // mutating member call, if that form
};

/// Walks the lvalue chains of [begin, end) and returns every mutation:
/// assignment, compound assignment, increment/decrement, or a mutating
/// member call, applied to a chain rooted at an identifier.
std::vector<Mutation> collect_mutations(const std::vector<Tok>& toks,
                                        std::size_t begin, std::size_t end) {
  std::vector<Mutation> out;
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != Tok::Kind::kIdent) continue;
    if (textscan::cpp_keywords().count(toks[i].text) != 0) continue;
    // Chain roots only: skip members of another base.
    if (i > begin && (toks[i - 1].text == "." || toks[i - 1].text == "->" ||
                      toks[i - 1].text == "::")) {
      continue;
    }
    Mutation m;
    m.base = toks[i].text;
    m.line = toks[i].line;

    // Prefix increment/decrement: `++x` tokenizes as `+ + x`.
    if (i >= begin + 2 && toks[i - 1].text == toks[i - 2].text &&
        (toks[i - 1].text == "+" || toks[i - 1].text == "-")) {
      out.push_back(std::move(m));
      continue;
    }

    // Walk the member/subscript chain.
    std::size_t j = i + 1;
    bool terminal_call = false;
    while (j < end) {
      if ((toks[j].text == "." || toks[j].text == "->") &&
          j + 1 < end && toks[j + 1].kind == Tok::Kind::kIdent) {
        const std::string& member = toks[j + 1].text;
        if (tok_is(toks, j + 2, "(")) {
          if (mutating_members().count(member) != 0) {
            m.member = member;
            terminal_call = true;
          }
          break;  // any member call ends the lvalue chain
        }
        j += 2;
        continue;
      }
      if (toks[j].text == "[") {
        const std::size_t close = match_bracket(toks, j);
        if (close >= end) break;
        if (!m.indexed) {
          m.indexed = true;
          for (std::size_t k = j + 1; k < close; ++k)
            m.index_toks.push_back(toks[k].text);
        }
        j = close + 1;
        continue;
      }
      break;
    }

    if (terminal_call) {
      out.push_back(std::move(m));
      continue;
    }
    if (j >= end) continue;

    // Suffix operators. The tokenizer splits compound operators, so `+=` is
    // `+` `=` and `++` is `+` `+`; comparisons (`==`, `<=`, `>=`, `!=`)
    // never have a bare `=` or doubled `+`/`-` in these shapes.
    const std::string& a = toks[j].text;
    const std::string b = j + 1 < end ? toks[j + 1].text : "";
    const bool plain_assign = a == "=" && b != "=";
    const bool compound_assign =
        (a == "+" || a == "-" || a == "*" || a == "/" || a == "%" ||
         a == "&" || a == "|" || a == "^") &&
        b == "=" && !(a == "&" && j + 2 < end && toks[j + 2].text == "=");
    const bool incdec = (a == "+" && b == "+") || (a == "-" && b == "-");
    if (plain_assign || compound_assign || incdec) {
      // `a && b = ...` cannot appear; `&&` would be two `&` tokens and is
      // excluded by the compound check above.
      out.push_back(std::move(m));
    }
  }
  return out;
}

/// Collects names declared inside [begin, end): parameters are added by the
/// caller; this finds `Type name =`, `Type name{...}`, `Type& name :`, and
/// `Type name(...);` declaration shapes.
std::set<std::string> collect_locals(const std::vector<Tok>& toks,
                                     std::size_t begin, std::size_t end) {
  std::set<std::string> locals;
  for (std::size_t i = begin + 1; i < end; ++i) {
    if (toks[i].kind != Tok::Kind::kIdent) continue;
    if (textscan::cpp_keywords().count(toks[i].text) != 0) continue;
    const Tok& prev = toks[i - 1];
    bool type_before = false;
    if (prev.kind == Tok::Kind::kIdent) {
      type_before = textscan::cpp_keywords().count(prev.text) == 0 ||
                    type_keywords().count(prev.text) != 0;
    } else {
      type_before = prev.text == "&" || prev.text == "*" || prev.text == ">";
    }
    if (!type_before) continue;
    if (i + 1 >= end) continue;
    const std::string& next = toks[i + 1].text;
    if (next == "=" && !tok_is(toks, i + 2, "=")) {
      locals.insert(toks[i].text);
    } else if (next == "{" || next == ";" || next == ":") {
      locals.insert(toks[i].text);
    } else if (next == "(") {
      // `Type name(args);` — require a type before the name (an identifier
      // or a template close) to avoid swallowing calls like `helper(x)`.
      if (prev.text == ">" ||
          (prev.kind == Tok::Kind::kIdent &&
           textscan::non_definition_preceders().count(prev.text) == 0)) {
        locals.insert(toks[i].text);
      }
    } else if ((next == ")" || next == ",") &&
               (prev.text == "&" || prev.text == "*")) {
      // `Type& name)` / `Type* name,` — a reference/pointer parameter of a
      // nested lambda (or helper callback) declared inside the body.
      locals.insert(toks[i].text);
    }
  }
  return locals;
}

/// File-wide scan for variables declared with type `type_name` (handles
/// `Type x`, `ns::Type x`, `Type& x`, `const Type* x`).
std::set<std::string> vars_of_type(const std::vector<Tok>& toks,
                                   const std::string& type_name) {
  std::set<std::string> vars;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::Kind::kIdent || toks[i].text != type_name)
      continue;
    std::size_t j = i + 1;
    if (tok_is(toks, j, "<")) j = skip_angles(toks, j);
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == Tok::Kind::kIdent &&
        textscan::cpp_keywords().count(toks[j].text) == 0) {
      vars.insert(toks[j].text);
    }
  }
  return vars;
}

/// One parallel dispatch site found in a file.
struct Site {
  std::size_t spawn_index = 0;   ///< index into spec.spawns
  std::size_t callee_tok = 0;    ///< token index of the callee identifier
  std::size_t args_open = 0;     ///< token index of the call's `(`
  std::size_t args_close = 0;    ///< its matching `)`
  std::size_t line = 0;
};

/// Finds every dispatch site of `spawn` in `toks`. Free-callee sites are
/// call-shaped occurrences of the callee; member sites additionally require
/// the receiver object to be declared with the spawn's receiver type
/// somewhere in the file.
std::vector<Site> find_sites(const std::vector<Tok>& toks,
                             const SpawnSpec& spawn, std::size_t spawn_index) {
  std::vector<Site> out;
  const std::set<std::string> receivers =
      spawn.receiver.empty() ? std::set<std::string>{}
                             : vars_of_type(toks, spawn.receiver);
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::Kind::kIdent || toks[i].text != spawn.callee)
      continue;
    if (!tok_is(toks, i + 1, "(")) continue;
    const Tok& prev = toks[i - 1];
    bool is_site = false;
    if (spawn.receiver.empty()) {
      if (prev.kind == Tok::Kind::kIdent) {
        is_site = textscan::non_definition_preceders().count(prev.text) != 0;
      } else {
        is_site = call_preceder_punct(prev.text);
      }
    } else {
      if ((prev.text == "." || prev.text == "->") && i >= 2 &&
          toks[i - 2].kind == Tok::Kind::kIdent) {
        is_site = receivers.count(toks[i - 2].text) != 0;
      }
    }
    if (!is_site) continue;
    const std::size_t close = match_bracket(toks, i + 1);
    if (close >= toks.size()) continue;
    out.push_back({spawn_index, i, i + 1, close, toks[i].line});
  }
  return out;
}

/// Returns the token range [begin, end) of the call argument selected by
/// `spawn.arg` ("last" or a 1-based position); {0, 0} when out of range.
std::pair<std::size_t, std::size_t> select_arg(const std::vector<Tok>& toks,
                                               const Site& site,
                                               const SpawnSpec& spawn) {
  std::vector<std::pair<std::size_t, std::size_t>> args;
  std::size_t start = site.args_open + 1;
  int depth = 0;
  for (std::size_t i = start; i <= site.args_close; ++i) {
    const bool at_end = i == site.args_close;
    if (!at_end && bracket_is_open(toks[i].text)) ++depth;
    if (!at_end && bracket_is_close(toks[i].text)) --depth;
    if (at_end || (depth == 0 && toks[i].text == ",")) {
      if (start < i) args.emplace_back(start, i);
      start = i + 1;
    }
  }
  if (args.empty()) return {0, 0};
  if (spawn.arg == "last") return args.back();
  const std::size_t pos = static_cast<std::size_t>(std::stoul(spawn.arg));
  if (pos == 0 || pos > args.size()) return {0, 0};
  return args[pos - 1];
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver

Driver::Driver(Spec spec, std::string spec_path)
    : spec_(std::move(spec)), spec_path_(std::move(spec_path)) {}

void Driver::add_file(const std::string& path, const std::string& content) {
  files_.emplace(path, strip_source(path, content));
}

void Driver::set_partial(bool partial) { partial_ = partial; }

bool Driver::allowed(const std::string& rule, const std::string& path) const {
  auto it = spec_.allow.find(rule);
  return it != spec_.allow.end() &&
         textscan::matches_any_prefix(path, it->second);
}

namespace {

/// Per-site analysis context: the lambda, its locals, the shard-index
/// vocabulary, and the sanctioned names.
struct BodyAnalysis {
  const std::vector<Tok>& toks;
  const std::string& path;
  const Spec& spec;
  const RegionSpec* region;  // nullptr only for fixtures without regions
  const SpawnSpec& spawn;
  std::vector<Finding>& findings;

  Lambda lambda;
  std::set<std::string> locals;
  std::string index_name;    // shard-index parameter name ("" when none)
  std::string context_name;  // TrialContext parameter name ("" when none)
  std::set<std::string> rng_vars;  // file-wide Rng-typed variable names

  void flag(std::size_t line, const char* rule, std::string message) {
    findings.push_back({path, line, rule, std::move(message)});
  }

  [[nodiscard]] bool in_slots(const std::string& name) const {
    return region != nullptr &&
           std::find(region->slots.begin(), region->slots.end(), name) !=
               region->slots.end();
  }

  [[nodiscard]] bool in_readonly(const std::string& name) const {
    return region != nullptr &&
           std::find(region->readonly.begin(), region->readonly.end(),
                     name) != region->readonly.end();
  }

  /// True when the subscript tokens are exactly the shard index: `i` in
  /// param mode, `ctx . index` (or `i`) in context mode.
  [[nodiscard]] bool is_shard_index(
      const std::vector<std::string>& index_toks) const {
    if (!index_name.empty() && index_toks.size() == 1 &&
        index_toks[0] == index_name) {
      return true;
    }
    if (!context_name.empty() && index_toks.size() == 3 &&
        index_toks[0] == context_name && index_toks[1] == "." &&
        index_toks[2] == "index") {
      return true;
    }
    return false;
  }

  void prepare() {
    locals = collect_locals(toks, lambda.body_begin, lambda.body_end);
    for (const auto& [type, name] : lambda.params) {
      locals.insert(name);
      if (type.find("TrialContext") != std::string::npos) context_name = name;
    }
    locals.insert(lambda.val_captures.begin(), lambda.val_captures.end());
    if (spawn.index == "param" && !lambda.params.empty() &&
        context_name.empty()) {
      index_name = lambda.params.back().second;
    }
    for (const std::string& type : {std::string("Rng")}) {
      const std::set<std::string> vars = vars_of_type(toks, type);
      rng_vars.insert(vars.begin(), vars.end());
    }
  }

  // RNR501 (capture-discipline leg): explicit by-reference captures must be
  // declared slots, readonly names, or instances of a read-only type.
  void check_ref_captures() {
    for (const std::string& name : lambda.ref_captures) {
      if (in_slots(name) || in_readonly(name)) continue;
      bool readonly_typed = false;
      for (const std::string& type : spec.readonly_types) {
        const std::set<std::string> vars = vars_of_type(toks, type);
        if (vars.count(name) != 0) {
          readonly_typed = true;
          break;
        }
      }
      if (readonly_typed) continue;
      flag(lambda.line, "RNR501",
           "parallel lambda captures '" + name +
               "' by reference; declare it as a region slot or readonly "
               "name in concurrency.toml (or capture by value)");
    }
  }

  // RNR501/503/504 (mutation legs).
  void check_mutations() {
    const std::vector<Mutation> mutations =
        collect_mutations(toks, lambda.body_begin, lambda.body_end);
    for (const Mutation& m : mutations) {
      if (locals.count(m.base) != 0) continue;
      if (m.indexed) {
        if (is_shard_index(m.index_toks)) {
          if (in_slots(m.base)) continue;
          flag(m.line, "RNR501",
               "parallel body writes '" + m.base +
                   "[" + index_display() +
                   "]' but it is not a declared per-shard slot; add it to "
                   "the region's slots in concurrency.toml");
        } else {
          flag(m.line, "RNR503",
               "parallel body mutates '" + m.base +
                   "' indexed by something other than the shard index; "
                   "results become schedule-dependent");
        }
        continue;
      }
      if (!m.member.empty() && push_like_members().count(m.member) != 0) {
        flag(m.line, "RNR504",
             "parallel body grows shared '" + m.base + "' via ." + m.member +
                 "(); completion-order merge — write to a preallocated "
                 "slot[index] instead");
        continue;
      }
      flag(m.line, "RNR501",
           "parallel body mutates captured '" + m.base +
               "'; not a declared per-shard slot (shared-state write "
               "races and breaks --jobs determinism)");
    }
  }

  [[nodiscard]] std::string index_display() const {
    if (!index_name.empty()) return index_name;
    if (!context_name.empty()) return context_name + ".index";
    return "index";
  }

  // RNR502 — Rng hygiene inside the body.
  void check_rng() {
    // Leg 1: shared Rng objects used inside the body.
    for (std::size_t i = lambda.body_begin; i < lambda.body_end; ++i) {
      if (toks[i].kind != Tok::Kind::kIdent) continue;
      if (rng_vars.count(toks[i].text) == 0) continue;
      if (locals.count(toks[i].text) != 0) continue;
      if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->"))
        continue;  // member of a local chain (e.g. ctx.rng)
      if (tok_is(toks, i + 1, "("))
        continue;  // a call — Rng objects are not callable, so this name is
                   // a derivation helper like trial_rng(master, i)
      flag(toks[i].line, "RNR502",
           "parallel body uses shared Rng '" + toks[i].text +
               "'; derive a per-shard stream via Rng(master).split(" +
               index_display() + ") instead");
    }
    // Leg 2: Rng constructed in the body without an index derivation.
    for (std::size_t i = lambda.body_begin; i + 1 < lambda.body_end; ++i) {
      if (toks[i].kind != Tok::Kind::kIdent || toks[i].text != "Rng") continue;
      std::size_t j = i + 1;
      if (toks[j].kind != Tok::Kind::kIdent) continue;  // need `Rng name(...)`
      const std::string& name = toks[j].text;
      ++j;
      if (j >= lambda.body_end ||
          (toks[j].text != "(" && toks[j].text != "{")) {
        continue;
      }
      const std::size_t close = match_bracket(toks, j);
      if (close >= lambda.body_end) continue;
      bool derived = false;
      for (std::size_t k = j + 1; k < close && !derived; ++k) {
        if (toks[k].kind != Tok::Kind::kIdent) continue;
        const std::string& t = toks[k].text;
        derived = rng_derivations().count(t) != 0 ||
                  (!index_name.empty() && t == index_name) ||
                  (!context_name.empty() && t == context_name);
      }
      if (!derived) {
        flag(toks[i].line, "RNR502",
             "Rng '" + name +
                 "' constructed in a parallel body without a split/" +
                 "derive_seed derivation from the shard index; every shard "
                 "draws the same stream (or a nondeterministic one)");
      }
    }
  }

  // RNR506 — global mutable state reached from the body (one-level walk).
  void check_globals() {
    for (std::size_t i = lambda.body_begin; i < lambda.body_end; ++i) {
      if (toks[i].kind != Tok::Kind::kIdent) continue;
      if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->"))
        continue;
      const std::string& t = toks[i].text;
      if (is_global(t) && locals.count(t) == 0) {
        flag(toks[i].line, "RNR506",
             "parallel body touches global mutable state '" + t + "'");
        continue;
      }
      // One-level call-graph walk: a same-file callee whose body touches a
      // global taints the call site.
      if (!tok_is(toks, i + 1, "(")) continue;
      if (locals.count(t) != 0) continue;
      if (textscan::cpp_keywords().count(t) != 0) continue;
      if (lambda.val_captures.count(t) != 0) continue;
      const std::vector<FunctionBody> defs = find_functions(toks, t);
      for (const FunctionBody& def : defs) {
        if (def.body_begin <= i && i < def.body_end) continue;  // recursion
        for (std::size_t k = def.body_begin; k < def.body_end; ++k) {
          if (toks[k].kind != Tok::Kind::kIdent) continue;
          if (k > 0 &&
              (toks[k - 1].text == "." || toks[k - 1].text == "->")) {
            continue;
          }
          if (is_global(toks[k].text)) {
            flag(toks[i].line, "RNR506",
                 "parallel body calls '" + t +
                     "' which touches global mutable state '" + toks[k].text +
                     "' (one-level call-graph walk)");
            k = def.body_end;  // one finding per callee is enough
            break;
          }
        }
        break;  // first definition is the one-level approximation
      }
    }
  }

  [[nodiscard]] bool is_global(const std::string& name) const {
    if (name.size() > 2 && name.compare(0, 2, "g_") == 0) return true;
    return std::find(spec.globals.begin(), spec.globals.end(), name) !=
           spec.globals.end();
  }

  void run_all() {
    prepare();
    check_ref_captures();
    check_mutations();
    check_rng();
    check_globals();
  }
};

}  // namespace

Driver::Result Driver::run() {
  Result result;
  result.files_checked = files_.size();

  std::map<std::string, std::vector<Tok>> tokens;
  for (const auto& [path, file] : files_) {
    tokens.emplace(path, tokenize(file.code));
  }

  // RNR505 — ad-hoc synchronization in src/ outside src/runtime/. Requires
  // the `std ::` qualifier so include lines and domain identifiers that
  // happen to collide with primitive names do not trip the rule.
  for (const auto& [path, toks] : tokens) {
    if (!textscan::starts_with(path, "src/")) continue;
    if (textscan::starts_with(path, "src/runtime/")) continue;
    for (std::size_t i = 2; i < toks.size(); ++i) {
      if (toks[i].kind != Tok::Kind::kIdent) continue;
      if (sync_idents().count(toks[i].text) == 0) continue;
      if (toks[i - 1].text != "::" || toks[i - 2].text != "std") continue;
      result.findings.push_back(
          {path, toks[i].line, "RNR505",
           "std::" + toks[i].text +
               " outside src/runtime/: ad-hoc synchronization breaks the "
               "determinism model (suppress with a reason if this is a "
               "sanctioned cross-thread counter)"});
    }
  }

  // Dispatch-site discovery and per-site analysis.
  std::vector<bool> region_hit(spec_.regions.size(), false);
  for (const auto& [path, toks] : tokens) {
    for (std::size_t si = 0; si < spec_.spawns.size(); ++si) {
      const SpawnSpec& spawn = spec_.spawns[si];
      const std::vector<Site> sites = find_sites(toks, spawn, si);
      if (sites.empty()) continue;

      // Precompute the exact-region function ranges for this file + spawn.
      struct RegionRange {
        std::size_t region_index;
        std::size_t begin;
        std::size_t end;
      };
      std::vector<RegionRange> ranges;
      for (std::size_t ri = 0; ri < spec_.regions.size(); ++ri) {
        const RegionSpec& region = spec_.regions[ri];
        if (region.spawn != spawn.name || region.file != path) continue;
        for (const FunctionBody& fn : find_functions(toks, region.function)) {
          ranges.push_back({ri, fn.body_begin, fn.body_end});
        }
      }

      for (const Site& site : sites) {
        ++result.sites_checked;
        const RegionSpec* covering = nullptr;
        for (const RegionRange& range : ranges) {
          if (range.begin <= site.callee_tok && site.callee_tok < range.end) {
            covering = &spec_.regions[range.region_index];
            region_hit[range.region_index] = true;
            break;
          }
        }
        if (covering == nullptr) {
          for (std::size_t ri = 0; ri < spec_.regions.size(); ++ri) {
            const RegionSpec& region = spec_.regions[ri];
            if (region.spawn != spawn.name || region.file_prefix.empty())
              continue;
            if (textscan::starts_with(path, region.file_prefix.c_str())) {
              covering = &region;
              region_hit[ri] = true;
              break;
            }
          }
        }
        if (covering == nullptr) {
          result.findings.push_back(
              {path, site.line, "RNR510",
               "undeclared parallel dispatch site: " + spawn.callee +
                   "(...) of spawn family '" + spawn.name +
                   "' has no [[region]] entry in concurrency.toml"});
          continue;
        }

        // Locate the parallel callable: an inline lambda or a name resolved
        // to a preceding `auto name = [...]` definition.
        const auto [arg_begin, arg_end] = select_arg(toks, site, spawn);
        if (arg_begin == 0 && arg_end == 0) continue;
        std::size_t lambda_tok = toks.size();
        std::size_t name_tok = toks.size();
        if (toks[arg_begin].text == "[") {
          lambda_tok = arg_begin;
        } else if (arg_end == arg_begin + 1 &&
                   toks[arg_begin].kind == Tok::Kind::kIdent) {
          name_tok = arg_begin;
        } else if (arg_end == arg_begin + 6 && toks[arg_begin].text == "std" &&
                   tok_is(toks, arg_begin + 1, "::") &&
                   tok_is(toks, arg_begin + 2, "move") &&
                   tok_is(toks, arg_begin + 3, "(") &&
                   toks[arg_begin + 4].kind == Tok::Kind::kIdent) {
          name_tok = arg_begin + 4;  // std::move(task)
        }
        if (name_tok < toks.size()) {
          const std::string& name = toks[name_tok].text;
          for (std::size_t k = site.callee_tok; k >= 3; --k) {
            if (toks[k].text == "[" && toks[k - 1].text == "=" &&
                toks[k - 2].text == name && toks[k - 3].text == "auto") {
              lambda_tok = k;
              break;
            }
          }
        }
        if (lambda_tok >= toks.size()) continue;  // forwarded callable etc.
        Lambda lambda = parse_lambda(toks, lambda_tok);
        if (!lambda.valid) continue;
        ++result.lambdas_checked;

        BodyAnalysis analysis{toks,     path,   spec_,
                              covering, spawn,  result.findings,
                              std::move(lambda), {}, "", "", {}};
        analysis.run_all();
      }
    }
  }

  // RNR510 — dead regions (full runs only): a declared region whose file is
  // missing, whose function is gone, or which no site hit this run.
  if (!partial_) {
    for (std::size_t ri = 0; ri < spec_.regions.size(); ++ri) {
      const RegionSpec& region = spec_.regions[ri];
      if (region_hit[ri]) continue;
      if (!region.file.empty()) {
        auto it = tokens.find(region.file);
        if (it == tokens.end()) {
          result.findings.push_back(
              {spec_path_, region.line, "RNR510",
               "region '" + region.name + "': file " + region.file +
                   " is not in the tree"});
          continue;
        }
        if (find_functions(it->second, region.function).empty()) {
          result.findings.push_back(
              {spec_path_, region.line, "RNR510",
               "region '" + region.name + "': function " + region.function +
                   " not found in " + region.file});
          continue;
        }
      }
      result.findings.push_back(
          {spec_path_, region.line, "RNR510",
           "region '" + region.name +
               "' matched no dispatch site this run; the code drifted from "
               "the spec (delete or update the entry)"});
    }
  }

  // Suppressions: drop findings covered by an inline allow; flag malformed
  // suppression comments; honour [allow] path carve-outs.
  std::vector<Finding> kept;
  for (Finding& finding : result.findings) {
    if (allowed(finding.rule, finding.file)) {
      ++result.suppressed;
      result.suppressed_findings.push_back(std::move(finding));
      continue;
    }
    kept.push_back(std::move(finding));
  }
  result.findings = std::move(kept);

  for (const auto& [path, file] : files_) {
    const textscan::LineSuppressions sup =
        textscan::collect_suppressions(file, "reconfnet-racecheck:", "RNR");
    for (std::size_t line : sup.malformed) {
      if (allowed("RNR590", path)) continue;
      result.findings.push_back(
          {path, line, "RNR590",
           "malformed reconfnet-racecheck suppression (want "
           "'reconfnet-racecheck: allow(RNRnnn) reason')"});
    }
    std::set<std::pair<std::size_t, std::string>> used;
    if (!sup.allow.empty()) {
      std::vector<Finding> remaining;
      for (Finding& finding : result.findings) {
        if (finding.file == path) {
          auto it = sup.allow.find(finding.line);
          if (it != sup.allow.end() && it->second.count(finding.rule) != 0) {
            ++result.suppressed;
            used.insert({finding.line, finding.rule});
            result.suppressed_findings.push_back(std::move(finding));
            continue;
          }
        }
        remaining.push_back(std::move(finding));
      }
      result.findings = std::move(remaining);
    }
    const auto stale = textscan::stale_suppressions(path, sup, used);
    result.stale.insert(result.stale.end(), stale.begin(), stale.end());
  }

  textscan::sort_and_dedupe(result.findings);
  textscan::sort_and_dedupe(result.suppressed_findings);
  return result;
}

}  // namespace reconfnet::racecheck
