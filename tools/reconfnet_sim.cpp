// reconfnet_sim — command-line driver for the reconfnet scenarios.
//
//   reconfnet_sim churn    [--n 256] [--epochs 8] [--turnover 0.02]
//                          [--growth 1.0] [--rate 2.0]
//                          [--adversary uniform|segment|flood|burst|none]
//   reconfnet_sim dos      [--n 1024] [--epochs 4] [--blocked 0.35]
//                          [--lateness 40] [--group-c 2.0] [--static]
//                          [--adversary random|isolation|groupwipe|none]
//   reconfnet_sim combined [--n 1024] [--epochs 4] [--turnover 0.005]
//                          [--growth 1.0] [--blocked 0.25] [--lateness 60]
//                          [--group-c 2.0]
//   reconfnet_sim sample   [--n 1024] [--graph hgraph|hypercube]
//                          [--eps 1.0] [--c 2.0] [--plain]
//   reconfnet_sim estimate [--n 1024] [--slots 32]
//
// Common: [--seed <u64>]. Exit code 0 iff the scenario met its guarantee.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adversary/churn.hpp"
#include "adversary/dos.hpp"
#include "churn/overlay.hpp"
#include "churn/reconfigure.hpp"
#include "combined/overlay.hpp"
#include "dos/overlay.hpp"
#include "estimate/size_estimation.hpp"
#include "graph/hgraph.hpp"
#include "graph/hypercube.hpp"
#include "sampling/hgraph_sampler.hpp"
#include "sampling/hypercube_sampler.hpp"
#include "sampling/plain_walk.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace reconfnet;

/// Tiny flag parser: --key value pairs plus boolean switches.
class Args {
 public:
  Args(int argc, char** argv, const std::vector<std::string>& switches) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw std::invalid_argument("expected --flag, got: " + key);
      }
      key = key.substr(2);
      const bool is_switch =
          std::find(switches.begin(), switches.end(), key) != switches.end();
      if (is_switch) {
        // Materializing the std::string before the assignment sidesteps a
        // gcc-12 -Wrestrict false positive (PR 105329) on assigning a char
        // literal into the map at -O3.
        values_.insert_or_assign(key, std::string("1"));
      } else {
        if (i + 1 >= argc) {
          throw std::invalid_argument("missing value for --" + key);
        }
        values_[key] = argv[++i];
      }
    }
  }

  [[nodiscard]] std::size_t get_size(const std::string& key,
                                     std::size_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] int get_int(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoi(it->second);
  }
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }

 private:
  std::map<std::string, std::string> values_;
};

int run_churn(const Args& args) {
  churn::ChurnOverlay::Config config;
  config.initial_size = args.get_size("n", 256);
  config.degree = args.get_int("degree", 8);
  config.sampling.c = args.get_double("c", 2.0);
  config.seed = args.get_size("seed", 1);
  churn::ChurnOverlay overlay(config);

  support::Rng rng(config.seed + 1);
  const double turnover = args.get_double("turnover", 0.02);
  const double growth = args.get_double("growth", 1.0);
  const double rate = args.get_double("rate", 2.0);
  const std::string kind = args.get_string("adversary", "uniform");
  std::unique_ptr<adversary::ChurnAdversary> adversary;
  adversary::SegmentChurn* segment = nullptr;
  if (kind == "uniform") {
    adversary =
        std::make_unique<adversary::UniformChurn>(turnover, growth, rate, rng);
  } else if (kind == "segment") {
    auto owned = std::make_unique<adversary::SegmentChurn>(turnover, rate, rng);
    segment = owned.get();
    adversary = std::move(owned);
  } else if (kind == "flood") {
    adversary =
        std::make_unique<adversary::SponsorFloodChurn>(turnover, rate, rng);
  } else if (kind == "burst") {
    adversary = std::make_unique<adversary::BurstChurn>(turnover, rate,
                                                        7, rng);
  } else if (kind == "none") {
    adversary = std::make_unique<adversary::NoChurn>();
  } else {
    throw std::invalid_argument("unknown churn adversary: " + kind);
  }

  support::Table table({"epoch", "ok", "members", "joins", "leaves", "rounds",
                        "connected"});
  const int epochs = args.get_int("epochs", 8);
  int failures = 0;
  bool disconnected = false;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    if (segment != nullptr) segment->set_order(overlay.cycle_order(0));
    const auto report = overlay.run_epoch(*adversary);
    failures += report.success ? 0 : 1;
    disconnected |= !report.connected;
    table.add_row(
        {support::Table::num(epoch), report.success ? "yes" : "no",
         support::Table::num(static_cast<std::uint64_t>(report.members_after)),
         support::Table::num(static_cast<std::uint64_t>(report.joins_applied)),
         support::Table::num(
             static_cast<std::uint64_t>(report.leaves_applied)),
         support::Table::num(report.rounds),
         report.connected ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\n" << (disconnected ? "DISCONNECTED" : "connected throughout")
            << ", " << failures << "/" << epochs << " epochs retried\n";
  return disconnected ? EXIT_FAILURE : EXIT_SUCCESS;
}

std::unique_ptr<adversary::DosAdversary> make_dos_adversary(
    const std::string& kind, support::Rng rng) {
  if (kind == "random") return std::make_unique<adversary::RandomDos>(rng);
  if (kind == "isolation") {
    return std::make_unique<adversary::IsolationDos>(rng);
  }
  if (kind == "groupwipe") {
    return std::make_unique<adversary::GroupWipeDos>(rng);
  }
  if (kind == "none") return std::make_unique<adversary::NoDos>();
  throw std::invalid_argument("unknown DoS adversary: " + kind);
}

int run_dos(const Args& args) {
  dos::DosOverlay::Config config;
  config.size = args.get_size("n", 1024);
  config.group_c = args.get_double("group-c", 2.0);
  config.seed = args.get_size("seed", 1);
  dos::DosOverlay overlay(config);

  auto adversary = make_dos_adversary(args.get_string("adversary", "random"),
                                      support::Rng(config.seed + 1));
  dos::DosOverlay::Attack attack;
  attack.adversary = adversary.get();
  attack.blocked_fraction = args.get_double("blocked", 0.35);
  attack.lateness = args.get_int("lateness", 40);

  std::cout << "grouped hypercube: d=" << overlay.dimension() << ", "
            << overlay.groups().supernodes() << " groups of ~"
            << overlay.size() / overlay.groups().supernodes() << "\n\n";

  support::Table table({"epoch", "ok", "silenced", "disconnected",
                        "min_avail", "grp_min", "grp_max"});
  const int epochs = args.get_int("epochs", 4);
  std::size_t disconnected = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const auto report = args.has("static")
                            ? overlay.run_static(attack, 16)
                            : overlay.run_epoch(attack);
    disconnected += report.disconnected_rounds;
    table.add_row(
        {support::Table::num(epoch), report.success ? "yes" : "no",
         support::Table::num(
             static_cast<std::uint64_t>(report.silenced_group_rounds)),
         support::Table::num(
             static_cast<std::uint64_t>(report.disconnected_rounds)),
         support::Table::num(report.min_available_fraction, 3),
         support::Table::num(
             static_cast<std::uint64_t>(report.min_group_size)),
         support::Table::num(
             static_cast<std::uint64_t>(report.max_group_size))});
  }
  table.print(std::cout);
  std::cout << "\n"
            << (disconnected == 0 ? "non-blocked nodes stayed connected"
                                  : "DISCONNECTED")
            << "\n";
  return disconnected == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}

int run_combined(const Args& args) {
  combined::CombinedOverlay::Config config;
  config.initial_size = args.get_size("n", 1024);
  config.group_c = args.get_double("group-c", 2.0);
  config.seed = args.get_size("seed", 1);
  combined::CombinedOverlay overlay(config);

  support::Rng rng(config.seed + 1);
  adversary::UniformChurn churn(args.get_double("turnover", 0.005),
                                args.get_double("growth", 1.0), 4.0, rng);
  auto dos_adversary = make_dos_adversary(
      args.get_string("adversary", "isolation"), support::Rng(config.seed + 2));
  combined::CombinedOverlay::Attack attack;
  attack.adversary = dos_adversary.get();
  attack.blocked_fraction = args.get_double("blocked", 0.25);
  attack.lateness = args.get_int("lateness", 60);

  support::Table table({"epoch", "ok", "members", "dims", "splits", "merges",
                        "disconnected"});
  const int epochs = args.get_int("epochs", 4);
  std::size_t disconnected = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const auto report = overlay.run_epoch(churn, attack);
    disconnected += report.disconnected_rounds;
    table.add_row(
        {support::Table::num(epoch), report.success ? "yes" : "no",
         support::Table::num(
             static_cast<std::uint64_t>(report.members_after)),
         support::Table::num(report.min_dimension) + ".." +
             support::Table::num(report.max_dimension),
         support::Table::num(report.split_merge.splits),
         support::Table::num(report.split_merge.merges),
         support::Table::num(
             static_cast<std::uint64_t>(report.disconnected_rounds))});
  }
  table.print(std::cout);
  std::cout << "\n"
            << (disconnected == 0 ? "non-blocked nodes stayed connected"
                                  : "DISCONNECTED")
            << "\n";
  return disconnected == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}

int run_sample(const Args& args) {
  const std::size_t n = args.get_size("n", 1024);
  const std::uint64_t seed = args.get_size("seed", 1);
  support::Rng rng(seed);
  sampling::SamplingConfig config;
  config.epsilon = args.get_double("eps", 1.0);
  config.c = args.get_double("c", 2.0);
  const auto estimate = sampling::SizeEstimate::from_true_size(n);

  const std::string graph_kind = args.get_string("graph", "hgraph");
  support::Table table(
      {"graph", "mode", "rounds", "samples/node", "success", "max_kbits"});
  if (graph_kind == "hgraph") {
    const auto g = graph::HGraph::random(n, 8, rng);
    if (args.has("plain")) {
      const auto walk = sampling::hgraph_mixing_walk_length(n, 8, 1.0);
      auto run_rng = rng.split(1);
      const auto result =
          sampling::run_hgraph_plain_walks(g, 8, walk, run_rng);
      table.add_row({"hgraph", "plain", support::Table::num(result.rounds),
                     "8", "yes",
                     support::Table::num(
                         static_cast<double>(result.max_node_bits_per_round) /
                             1000.0,
                         1)});
    } else {
      const auto schedule = sampling::hgraph_schedule(estimate, 8, config);
      auto run_rng = rng.split(1);
      const auto result = sampling::run_hgraph_sampling(g, schedule, run_rng);
      table.add_row(
          {"hgraph", "rapid", support::Table::num(result.rounds),
           support::Table::num(
               static_cast<std::uint64_t>(result.samples.front().size())),
           result.success ? "yes" : "NO",
           support::Table::num(
               static_cast<double>(result.max_node_bits_per_round) / 1000.0,
               1)});
    }
  } else if (graph_kind == "hypercube") {
    const int d = sampling::ceil_log2(n);
    const graph::Hypercube cube(d);
    if (args.has("plain")) {
      auto run_rng = rng.split(1);
      const auto result = sampling::run_hypercube_plain_walks(cube, 8, run_rng);
      table.add_row({"hypercube", "plain",
                     support::Table::num(result.rounds), "8", "yes",
                     support::Table::num(
                         static_cast<double>(result.max_node_bits_per_round) /
                             1000.0,
                         1)});
    } else {
      const auto schedule = sampling::hypercube_schedule(estimate, d, config);
      auto run_rng = rng.split(1);
      const auto result =
          sampling::run_hypercube_sampling(cube, schedule, run_rng);
      table.add_row(
          {"hypercube", "rapid", support::Table::num(result.rounds),
           support::Table::num(
               static_cast<std::uint64_t>(result.samples.front().size())),
           result.success ? "yes" : "NO",
           support::Table::num(
               static_cast<double>(result.max_node_bits_per_round) / 1000.0,
               1)});
    }
  } else {
    throw std::invalid_argument("unknown graph kind: " + graph_kind);
  }
  table.print(std::cout);
  return EXIT_SUCCESS;
}

int run_estimate(const Args& args) {
  const std::size_t n = args.get_size("n", 1024);
  support::Rng rng(args.get_size("seed", 1));
  const auto g = graph::HGraph::random(n, 8, rng);
  estimate::SizeEstimationConfig config;
  config.slots = args.get_int("slots", 32);
  const auto result = estimate::estimate_size(g, config, rng);
  std::cout << "n=" << n << " log2(n)=" << std::log2(static_cast<double>(n))
            << " estimate=" << result.log_n_upper[0]
            << " k(loglog upper)=" << result.loglog_upper[0]
            << " rounds=" << result.rounds
            << " converged=" << (result.converged ? "yes" : "no") << "\n";
  return result.converged ? EXIT_SUCCESS : EXIT_FAILURE;
}

void usage() {
  std::cout <<
      R"(reconfnet_sim <command> [--flag value ...]

commands:
  churn      churn-resistant H-graph overlay       (--n --epochs --turnover
             --growth --rate --adversary uniform|segment|flood|burst|none)
  dos        DoS-resistant grouped hypercube       (--n --epochs --blocked
             --lateness --group-c --static
             --adversary random|isolation|groupwipe|none)
  combined   churn + DoS with split/merge          (--n --epochs --turnover
             --growth --blocked --lateness --group-c)
  sample     one run of the sampling primitive     (--n --graph
             hgraph|hypercube --eps --c --plain)
  estimate   distributed size estimation           (--n --slots)

common: --seed <u64>
)";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return EXIT_FAILURE;
  }
  const std::string command = argv[1];
  try {
    const Args args(argc, argv, {"static", "plain"});
    if (command == "churn") return run_churn(args);
    if (command == "dos") return run_dos(args);
    if (command == "combined") return run_combined(args);
    if (command == "sample") return run_sample(args);
    if (command == "estimate") return run_estimate(args);
    usage();
    return EXIT_FAILURE;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return EXIT_FAILURE;
  }
}
