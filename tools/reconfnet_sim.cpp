// reconfnet_sim — command-line driver for the reconfnet scenarios.
//
//   reconfnet_sim churn    [--n 256] [--epochs 8] [--turnover 0.02]
//                          [--growth 1.0] [--rate 2.0]
//                          [--adversary uniform|segment|flood|burst|none]
//   reconfnet_sim dos      [--n 1024] [--epochs 4] [--blocked 0.35]
//                          [--lateness 40] [--group-c 2.0] [--static]
//                          [--adversary random|isolation|groupwipe|none]
//   reconfnet_sim combined [--n 1024] [--epochs 4] [--turnover 0.005]
//                          [--growth 1.0] [--blocked 0.25] [--lateness 60]
//                          [--group-c 2.0]
//   reconfnet_sim sample   [--n 1024] [--graph hgraph|hypercube]
//                          [--eps 1.0] [--c 2.0] [--plain]
//   reconfnet_sim estimate [--n 1024] [--slots 32]
//
// Common: [--seed <u64>] [--reps <k>] [--jobs <w>] [--json [path]].
// With --reps > 1 (or --json / --jobs), the scenario runs as a multi-trial
// experiment: per-trial seeds derive deterministically from the master seed,
// trials fan out across workers, and aggregates (plus the raw per-trial
// series) land in a BENCH_sim_<command>.json results file. Output is
// independent of --jobs. Exit code 0 iff every trial met its guarantee.
#include <algorithm>
// reconfnet-lint: allow(RNL003) wall-clock timing metadata for BENCH json
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "adversary/churn.hpp"
#include "adversary/dos.hpp"
#include "churn/overlay.hpp"
#include "churn/reconfigure.hpp"
#include "combined/overlay.hpp"
#include "dos/overlay.hpp"
#include "estimate/size_estimation.hpp"
#include "graph/hgraph.hpp"
#include "graph/hypercube.hpp"
#include "runtime/results.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/trial_runner.hpp"
#include "sampling/hgraph_sampler.hpp"
#include "sampling/hypercube_sampler.hpp"
#include "sampling/plain_walk.hpp"
#include "support/args.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace reconfnet;
using support::Args;

/// One scenario execution: its exit code plus named scalar metrics, so the
/// multi-trial driver can aggregate across seeds.
struct Outcome {
  int exit_code = EXIT_SUCCESS;
  std::vector<std::string> names;
  std::vector<double> values;
};

Outcome run_churn(const Args& args, std::uint64_t seed, bool verbose) {
  churn::ChurnOverlay::Config config;
  config.initial_size = args.get_size("n", 256);
  config.degree = args.get_int("degree", 8);
  config.sampling.c = args.get_double("c", 2.0);
  config.seed = seed;
  churn::ChurnOverlay overlay(config);

  support::Rng rng(seed + 1);
  const double turnover = args.get_double("turnover", 0.02);
  const double growth = args.get_double("growth", 1.0);
  const double rate = args.get_double("rate", 2.0);
  const std::string kind = args.get_string("adversary", "uniform");
  std::unique_ptr<adversary::ChurnAdversary> adversary;
  adversary::SegmentChurn* segment = nullptr;
  if (kind == "uniform") {
    adversary =
        std::make_unique<adversary::UniformChurn>(turnover, growth, rate, rng);
  } else if (kind == "segment") {
    auto owned = std::make_unique<adversary::SegmentChurn>(turnover, rate, rng);
    segment = owned.get();
    adversary = std::move(owned);
  } else if (kind == "flood") {
    adversary =
        std::make_unique<adversary::SponsorFloodChurn>(turnover, rate, rng);
  } else if (kind == "burst") {
    adversary = std::make_unique<adversary::BurstChurn>(turnover, rate,
                                                        7, rng);
  } else if (kind == "none") {
    adversary = std::make_unique<adversary::NoChurn>();
  } else {
    throw std::invalid_argument("unknown churn adversary: " + kind);
  }

  support::Table table({"epoch", "ok", "members", "joins", "leaves", "rounds",
                        "connected"});
  const int epochs = args.get_int("epochs", 8);
  int failures = 0;
  bool disconnected = false;
  std::size_t joins = 0;
  std::size_t leaves = 0;
  std::size_t members = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    if (segment != nullptr) segment->set_order(overlay.cycle_order(0));
    const auto report = overlay.run_epoch(*adversary);
    failures += report.success ? 0 : 1;
    disconnected |= !report.connected;
    joins += report.joins_applied;
    leaves += report.leaves_applied;
    members = report.members_after;
    table.add_row(
        {support::Table::num(epoch), report.success ? "yes" : "no",
         support::Table::num(static_cast<std::uint64_t>(report.members_after)),
         support::Table::num(static_cast<std::uint64_t>(report.joins_applied)),
         support::Table::num(
             static_cast<std::uint64_t>(report.leaves_applied)),
         support::Table::num(report.rounds),
         report.connected ? "yes" : "NO"});
  }
  if (verbose) {
    table.print(std::cout);
    std::cout << "\n"
              << (disconnected ? "DISCONNECTED" : "connected throughout")
              << ", " << failures << "/" << epochs << " epochs retried\n";
  }
  return {disconnected ? EXIT_FAILURE : EXIT_SUCCESS,
          {"epochs_ok", "members_end", "joins_total", "leaves_total",
           "disconnected"},
          {static_cast<double>(epochs - failures),
           static_cast<double>(members), static_cast<double>(joins),
           static_cast<double>(leaves), disconnected ? 1.0 : 0.0}};
}

std::unique_ptr<adversary::DosAdversary> make_dos_adversary(
    const std::string& kind, support::Rng rng) {
  if (kind == "random") return std::make_unique<adversary::RandomDos>(rng);
  if (kind == "isolation") {
    return std::make_unique<adversary::IsolationDos>(rng);
  }
  if (kind == "groupwipe") {
    return std::make_unique<adversary::GroupWipeDos>(rng);
  }
  if (kind == "none") return std::make_unique<adversary::NoDos>();
  throw std::invalid_argument("unknown DoS adversary: " + kind);
}

Outcome run_dos(const Args& args, std::uint64_t seed, bool verbose) {
  dos::DosOverlay::Config config;
  config.size = args.get_size("n", 1024);
  config.group_c = args.get_double("group-c", 2.0);
  config.seed = seed;
  dos::DosOverlay overlay(config);

  auto adversary = make_dos_adversary(args.get_string("adversary", "random"),
                                      support::Rng(seed + 1));
  dos::DosOverlay::Attack attack;
  attack.adversary = adversary.get();
  attack.blocked_fraction = args.get_double("blocked", 0.35);
  attack.lateness = args.get_int("lateness", 40);

  if (verbose) {
    std::cout << "grouped hypercube: d=" << overlay.dimension() << ", "
              << overlay.groups().supernodes() << " groups of ~"
              << overlay.size() / overlay.groups().supernodes() << "\n\n";
  }

  support::Table table({"epoch", "ok", "silenced", "disconnected",
                        "min_avail", "grp_min", "grp_max"});
  const int epochs = args.get_int("epochs", 4);
  std::size_t disconnected = 0;
  std::size_t silenced = 0;
  double min_avail = 1.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const auto report = args.has("static")
                            ? overlay.run_static(attack, 16)
                            : overlay.run_epoch(attack);
    disconnected += report.disconnected_rounds;
    silenced += report.silenced_group_rounds;
    min_avail = std::min(min_avail, report.min_available_fraction);
    table.add_row(
        {support::Table::num(epoch), report.success ? "yes" : "no",
         support::Table::num(
             static_cast<std::uint64_t>(report.silenced_group_rounds)),
         support::Table::num(
             static_cast<std::uint64_t>(report.disconnected_rounds)),
         support::Table::num(report.min_available_fraction, 3),
         support::Table::num(
             static_cast<std::uint64_t>(report.min_group_size)),
         support::Table::num(
             static_cast<std::uint64_t>(report.max_group_size))});
  }
  if (verbose) {
    table.print(std::cout);
    std::cout << "\n"
              << (disconnected == 0 ? "non-blocked nodes stayed connected"
                                    : "DISCONNECTED")
              << "\n";
  }
  return {disconnected == 0 ? EXIT_SUCCESS : EXIT_FAILURE,
          {"silenced_group_rounds", "disconnected_rounds",
           "min_available_fraction"},
          {static_cast<double>(silenced), static_cast<double>(disconnected),
           min_avail}};
}

Outcome run_combined(const Args& args, std::uint64_t seed, bool verbose) {
  combined::CombinedOverlay::Config config;
  config.initial_size = args.get_size("n", 1024);
  config.group_c = args.get_double("group-c", 2.0);
  config.seed = seed;
  combined::CombinedOverlay overlay(config);

  support::Rng rng(seed + 1);
  adversary::UniformChurn churn(args.get_double("turnover", 0.005),
                                args.get_double("growth", 1.0), 4.0, rng);
  auto dos_adversary = make_dos_adversary(
      args.get_string("adversary", "isolation"), support::Rng(seed + 2));
  combined::CombinedOverlay::Attack attack;
  attack.adversary = dos_adversary.get();
  attack.blocked_fraction = args.get_double("blocked", 0.25);
  attack.lateness = args.get_int("lateness", 60);

  support::Table table({"epoch", "ok", "members", "dims", "splits", "merges",
                        "disconnected"});
  const int epochs = args.get_int("epochs", 4);
  std::size_t disconnected = 0;
  double splits = 0.0;
  double merges = 0.0;
  std::size_t members = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const auto report = overlay.run_epoch(churn, attack);
    disconnected += report.disconnected_rounds;
    splits += report.split_merge.splits;
    merges += report.split_merge.merges;
    members = report.members_after;
    table.add_row(
        {support::Table::num(epoch), report.success ? "yes" : "no",
         support::Table::num(
             static_cast<std::uint64_t>(report.members_after)),
         support::Table::num(report.min_dimension) + ".." +
             support::Table::num(report.max_dimension),
         support::Table::num(report.split_merge.splits),
         support::Table::num(report.split_merge.merges),
         support::Table::num(
             static_cast<std::uint64_t>(report.disconnected_rounds))});
  }
  if (verbose) {
    table.print(std::cout);
    std::cout << "\n"
              << (disconnected == 0 ? "non-blocked nodes stayed connected"
                                    : "DISCONNECTED")
              << "\n";
  }
  return {disconnected == 0 ? EXIT_SUCCESS : EXIT_FAILURE,
          {"members_end", "splits", "merges", "disconnected_rounds"},
          {static_cast<double>(members), splits, merges,
           static_cast<double>(disconnected)}};
}

Outcome run_sample(const Args& args, std::uint64_t seed, bool verbose) {
  const std::size_t n = args.get_size("n", 1024);
  support::Rng rng(seed);
  sampling::SamplingConfig config;
  config.epsilon = args.get_double("eps", 1.0);
  config.c = args.get_double("c", 2.0);
  const auto estimate = sampling::SizeEstimate::from_true_size(n);

  const std::string graph_kind = args.get_string("graph", "hgraph");
  support::Table table(
      {"graph", "mode", "rounds", "samples/node", "success", "max_kbits"});
  double rounds = 0.0;
  double samples = 0.0;
  double kbits = 0.0;
  bool success = true;
  if (graph_kind == "hgraph") {
    const auto g = graph::HGraph::random(n, 8, rng);
    if (args.has("plain")) {
      const auto walk = sampling::hgraph_mixing_walk_length(n, 8, 1.0);
      auto run_rng = rng.split(1);
      const auto result =
          sampling::run_hgraph_plain_walks(g, 8, walk, run_rng);
      rounds = static_cast<double>(result.rounds);
      samples = 8.0;
      kbits = static_cast<double>(result.max_node_bits_per_round) / 1000.0;
      table.add_row({"hgraph", "plain", support::Table::num(result.rounds),
                     "8", "yes", support::Table::num(kbits, 1)});
    } else {
      const auto schedule = sampling::hgraph_schedule(estimate, 8, config);
      auto run_rng = rng.split(1);
      const auto result = sampling::run_hgraph_sampling(g, schedule, run_rng);
      rounds = static_cast<double>(result.rounds);
      samples = static_cast<double>(result.samples.front().size());
      kbits = static_cast<double>(result.max_node_bits_per_round) / 1000.0;
      success = result.success;
      table.add_row(
          {"hgraph", "rapid", support::Table::num(result.rounds),
           support::Table::num(
               static_cast<std::uint64_t>(result.samples.front().size())),
           result.success ? "yes" : "NO", support::Table::num(kbits, 1)});
    }
  } else if (graph_kind == "hypercube") {
    const int d = sampling::ceil_log2(n);
    const graph::Hypercube cube(d);
    if (args.has("plain")) {
      auto run_rng = rng.split(1);
      const auto result = sampling::run_hypercube_plain_walks(cube, 8, run_rng);
      rounds = static_cast<double>(result.rounds);
      samples = 8.0;
      kbits = static_cast<double>(result.max_node_bits_per_round) / 1000.0;
      table.add_row({"hypercube", "plain",
                     support::Table::num(result.rounds), "8", "yes",
                     support::Table::num(kbits, 1)});
    } else {
      const auto schedule = sampling::hypercube_schedule(estimate, d, config);
      auto run_rng = rng.split(1);
      const auto result =
          sampling::run_hypercube_sampling(cube, schedule, run_rng);
      rounds = static_cast<double>(result.rounds);
      samples = static_cast<double>(result.samples.front().size());
      kbits = static_cast<double>(result.max_node_bits_per_round) / 1000.0;
      success = result.success;
      table.add_row(
          {"hypercube", "rapid", support::Table::num(result.rounds),
           support::Table::num(
               static_cast<std::uint64_t>(result.samples.front().size())),
           result.success ? "yes" : "NO", support::Table::num(kbits, 1)});
    }
  } else {
    throw std::invalid_argument("unknown graph kind: " + graph_kind);
  }
  if (verbose) table.print(std::cout);
  return {success ? EXIT_SUCCESS : EXIT_FAILURE,
          {"rounds", "samples_per_node", "max_kbits_per_node_round", "ok"},
          {rounds, samples, kbits, success ? 1.0 : 0.0}};
}

Outcome run_estimate(const Args& args, std::uint64_t seed, bool verbose) {
  const std::size_t n = args.get_size("n", 1024);
  support::Rng rng(seed);
  const auto g = graph::HGraph::random(n, 8, rng);
  estimate::SizeEstimationConfig config;
  config.slots = args.get_int("slots", 32);
  const auto result = estimate::estimate_size(g, config, rng);
  if (verbose) {
    std::cout << "n=" << n << " log2(n)=" << std::log2(static_cast<double>(n))
              << " estimate=" << result.log_n_upper[0]
              << " k(loglog upper)=" << result.loglog_upper[0]
              << " rounds=" << result.rounds
              << " converged=" << (result.converged ? "yes" : "no") << "\n";
  }
  return {result.converged ? EXIT_SUCCESS : EXIT_FAILURE,
          {"log_n_estimate", "loglog_upper", "rounds", "converged"},
          {result.log_n_upper[0],
           static_cast<double>(result.loglog_upper[0]),
           static_cast<double>(result.rounds),
           result.converged ? 1.0 : 0.0}};
}

Outcome run_scenario(const std::string& command, const Args& args,
                     std::uint64_t seed, bool verbose) {
  if (command == "churn") return run_churn(args, seed, verbose);
  if (command == "dos") return run_dos(args, seed, verbose);
  if (command == "combined") return run_combined(args, seed, verbose);
  if (command == "sample") return run_sample(args, seed, verbose);
  if (command == "estimate") return run_estimate(args, seed, verbose);
  throw std::invalid_argument("unknown command: " + command);
}

/// Multi-trial mode: fan `reps` independently seeded trials across `jobs`
/// workers, aggregate the per-trial metrics, and optionally write a
/// BENCH_sim_<command>.json results file. The table and JSON content are
/// byte-identical for any --jobs value.
int run_multi(const std::string& command, const Args& args,
              std::uint64_t master_seed, std::size_t reps, std::size_t jobs) {
  // reconfnet-lint: allow(RNL003) wall-clock feeds the timing block only
  const auto start = std::chrono::steady_clock::now();
  runtime::TrialRunner runner(master_seed, jobs);
  const auto outcomes =
      runner.run(reps, [&](runtime::TrialContext& trial) {
        return run_scenario(command, args, trial.derive_seed(), false);
      });

  runtime::BenchResults results(
      "sim_" + command, "reconfnet_sim " + command + " multi-trial run",
      "Per-trial metrics across " + support::Table::num(
          static_cast<std::uint64_t>(reps)) + " independently seeded runs.");
  results.set_meta("seed", runtime::Json(master_seed));
  results.set_meta("reps", runtime::Json(static_cast<std::uint64_t>(reps)));
  results.set_meta("command", runtime::Json(command));

  int exit_code = EXIT_SUCCESS;
  std::size_t failed = 0;
  for (const auto& outcome : outcomes) {
    if (outcome.exit_code != EXIT_SUCCESS) {
      exit_code = EXIT_FAILURE;
      ++failed;
    }
  }

  support::Table table({"metric", "mean", "min", "max", "p50"});
  const auto& names = outcomes.front().names;
  for (std::size_t m = 0; m < names.size(); ++m) {
    std::vector<double> series;
    series.reserve(outcomes.size());
    for (const auto& outcome : outcomes) series.push_back(outcome.values[m]);
    const auto summary = results.add_metric("trial", names[m], series);
    table.add_row({names[m], support::Table::num(summary.mean, 3),
                   support::Table::num(summary.min, 3),
                   support::Table::num(summary.max, 3),
                   support::Table::num(summary.p50, 3)});
  }
  std::cout << "reconfnet_sim " << command << ": " << reps << " trials, "
            << (reps - failed) << " ok\n\n";
  table.print(std::cout);
  results.add_note(support::Table::num(static_cast<std::uint64_t>(failed)) +
                   " of " +
                   support::Table::num(static_cast<std::uint64_t>(reps)) +
                   " trials failed their guarantee");
  results.set_exit_code(exit_code);
  // reconfnet-lint: allow(RNL003) wall-clock feeds the timing block only
  const std::chrono::duration<double> wall =
      // reconfnet-lint: allow(RNL003) wall-clock feeds the timing block only
      std::chrono::steady_clock::now() - start;
  results.set_timing(jobs, wall.count());
  if (args.has("json")) {
    std::string path = args.get_string("json", "");
    if (path.empty()) path = "BENCH_sim_" + command + ".json";
    results.write_file(path);
    std::cout << "\n[results written to " << path << "]\n";
  }
  return exit_code;
}

void usage() {
  std::cout <<
      R"(reconfnet_sim <command> [--flag value ...]

commands:
  churn      churn-resistant H-graph overlay       (--n --epochs --turnover
             --growth --rate --adversary uniform|segment|flood|burst|none)
  dos        DoS-resistant grouped hypercube       (--n --epochs --blocked
             --lateness --group-c --static
             --adversary random|isolation|groupwipe|none)
  combined   churn + DoS with split/merge          (--n --epochs --turnover
             --growth --blocked --lateness --group-c)
  sample     one run of the sampling primitive     (--n --graph
             hgraph|hypercube --eps --c --plain)
  estimate   distributed size estimation           (--n --slots)

common: --seed <u64>  --reps <k>  --jobs <workers, 0 = all cores>
        --json [path]   (write BENCH_sim_<command>.json results)

With --reps/--json/--jobs the scenario runs as a deterministic multi-trial
experiment; the output is identical for any --jobs value.
)";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return EXIT_FAILURE;
  }
  const std::string command = argv[1];
  try {
    const Args args(argc, argv, 2, {"static", "plain"}, {"json"});
    const std::uint64_t seed = args.get_u64("seed", 1);
    const std::size_t reps = std::max<std::size_t>(1, args.get_size("reps", 1));
    std::size_t jobs = args.get_size("jobs", 1);
    if (jobs == 0) jobs = runtime::ThreadPool::hardware_workers();
    if (reps > 1 || jobs > 1 || args.has("json")) {
      return run_multi(command, args, seed, reps, jobs);
    }
    return run_scenario(command, args, seed, true).exit_code;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    usage();
    return EXIT_FAILURE;
  }
}
