#!/usr/bin/env bash
# Run reconfnet_protocheck (tools/protocheck/) — the protocol-conformance
# gate — and fail non-zero on any unsuppressed finding. The checker compares
# the sources against the machine-readable protocol spec
# tools/protocheck/protocol.toml: message senders/receivers, per-send bits
# formulas, payload purity, round-phase order, and pinned constants (see
# DESIGN.md). Like run_lint.sh it is zero-dependency: with no build tree it
# is bootstrap-compiled on the spot via tools/bootstrap_tool.sh.
#
# Usage:
#   tools/run_protocheck.sh [build-dir] [file...]
#
#   build-dir  build tree to take the reconfnet_protocheck binary from
#              (default: first existing of build/default, build, build/tidy;
#              bootstrap-compiled when none is configured)
#   file...    restrict the run to these sources (partial mode: whole-tree
#              rules such as the orphan checks are skipped)
#
# Environment:
#   PROTOCHECK_LOG    also write the findings to this file (CI uploads it as
#                     an artifact); written even when the run is clean.
#   PROTOCHECK_SARIF  also write a SARIF 2.1.0 log to this file (for the CI
#                     code-scanning upload).
#   CXX               compiler for the bootstrap build (default: c++)
set -euo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

build_dir="${1:-}"
if [[ $# -gt 0 ]]; then
  shift
fi
if [[ -z "${build_dir}" ]]; then
  for candidate in build/default build build/tidy; do
    if [[ -f "${candidate}/CMakeCache.txt" ]]; then
      build_dir="${candidate}"
      break
    fi
  done
fi

check_bin="$(tools/bootstrap_tool.sh reconfnet_protocheck tools/protocheck \
  "${build_dir}" \
  tools/lint/textscan.hpp tools/lint/textscan.cpp \
  tools/protocheck/protocheck.hpp tools/protocheck/protocheck.cpp \
  tools/protocheck/main.cpp)"

echo "reconfnet_protocheck $("${check_bin}" --version | awk '{print $2}'): \
$("${check_bin}" --list-rules | wc -l) rules active" >&2

declare -a args=(--root . --spec tools/protocheck/protocol.toml)
if [[ -n "${PROTOCHECK_SARIF:-}" ]]; then
  args+=(--sarif "${PROTOCHECK_SARIF}")
fi
if [[ $# -gt 0 ]]; then
  args+=("$@")
fi

status=0
if [[ -n "${PROTOCHECK_LOG:-}" ]]; then
  "${check_bin}" "${args[@]}" 2>&1 | tee "${PROTOCHECK_LOG}" || status=$?
else
  "${check_bin}" "${args[@]}" || status=$?
fi
exit "${status}"
