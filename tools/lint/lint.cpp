#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <tuple>
#include <utility>

namespace reconfnet::lint {

namespace {

// ---------------------------------------------------------------------------
// Small string helpers

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

// ---------------------------------------------------------------------------
// Token stream over the stripped source

struct Tok {
  enum class Kind { kIdent, kPunct } kind;
  std::string text;
  std::size_t line;  // 1-based
};

std::vector<Tok> tokenize(const std::vector<std::string>& code) {
  std::vector<Tok> toks;
  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& s = code[li];
    std::size_t i = 0;
    while (i < s.size()) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (is_ident_start(c)) {
        std::size_t j = i + 1;
        while (j < s.size() && is_ident_char(s[j])) ++j;
        toks.push_back({Tok::Kind::kIdent, s.substr(i, j - i), li + 1});
        i = j;
        continue;
      }
      // Multi-char punctuation we must not split: `::` (so a lone `:` means
      // range-for) and `->` (so a lone `>` means template close).
      if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
        toks.push_back({Tok::Kind::kPunct, "::", li + 1});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < s.size() && s[i + 1] == '>') {
        toks.push_back({Tok::Kind::kPunct, "->", li + 1});
        i += 2;
        continue;
      }
      toks.push_back({Tok::Kind::kPunct, std::string(1, c), li + 1});
      ++i;
    }
  }
  return toks;
}

bool tok_is(const std::vector<Tok>& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}

/// `i` points at `<`; returns the index one past the matching `>`, or
/// `t.size()` if unbalanced. Good enough for type contexts, where comparison
/// operators cannot appear.
std::size_t skip_angles(const std::vector<Tok>& t, std::size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i].text == "<") ++depth;
    if (t[i].text == ">" && --depth == 0) return i + 1;
    if (t[i].text == ";") break;  // statement ended: malformed, bail
  }
  return t.size();
}

const std::set<std::string>& cpp_keywords() {
  static const std::set<std::string> kKeywords = {
      "alignas",  "alignof",  "auto",      "bool",     "break",    "case",
      "catch",    "char",     "class",     "const",    "constexpr","continue",
      "decltype", "default",  "delete",    "do",       "double",   "else",
      "enum",     "explicit", "extern",    "false",    "float",    "for",
      "friend",   "if",       "inline",    "int",      "long",     "mutable",
      "namespace","new",      "noexcept",  "nullptr",  "operator", "private",
      "protected","public",   "return",    "short",    "signed",   "sizeof",
      "static",   "struct",   "switch",    "template", "this",     "throw",
      "true",     "try",      "typedef",   "typename", "union",    "unsigned",
      "using",    "virtual",  "void",      "volatile", "while"};
  return kKeywords;
}

// ---------------------------------------------------------------------------
// Suppressions

struct LineSuppressions {
  /// line -> rule ids allowed on that line.
  std::map<std::size_t, std::set<std::string>> allow;
  /// lines carrying a malformed reconfnet-lint comment.
  std::vector<std::size_t> malformed;
};

/// Parses `reconfnet-lint: allow(RNLxxx[, RNLyyy]) reason` out of comment
/// text. Returns false when the marker is present but malformed.
bool parse_allow_comment(const std::string& comment,
                         std::set<std::string>& rules) {
  const std::size_t marker = comment.find("reconfnet-lint:");
  std::size_t i = marker + std::string("reconfnet-lint:").size();
  while (i < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[i])) != 0)
    ++i;
  if (comment.compare(i, 6, "allow(") != 0) return false;
  i += 6;
  const std::size_t close = comment.find(')', i);
  if (close == std::string::npos) return false;
  std::string inside = comment.substr(i, close - i);
  std::replace(inside.begin(), inside.end(), ',', ' ');
  std::istringstream ids(inside);
  std::string id;
  while (ids >> id) {
    if (id.size() != 6 || id.compare(0, 3, "RNL") != 0 ||
        !std::all_of(id.begin() + 3, id.end(), [](char c) {
          return std::isdigit(static_cast<unsigned char>(c)) != 0;
        })) {
      return false;
    }
    rules.insert(id);
  }
  if (rules.empty()) return false;
  // A suppression without a reason is itself a finding: the reason is what
  // makes the exemption auditable.
  const std::string reason = trim(comment.substr(close + 1));
  return !reason.empty();
}

LineSuppressions collect_suppressions(const SourceFile& file) {
  LineSuppressions out;
  for (std::size_t li = 0; li < file.comments.size(); ++li) {
    const std::string& comment = file.comments[li];
    if (comment.find("reconfnet-lint:") == std::string::npos) continue;
    std::set<std::string> rules;
    const std::size_t line = li + 1;
    if (!parse_allow_comment(comment, rules)) {
      out.malformed.push_back(line);
      continue;
    }
    out.allow[line].insert(rules.begin(), rules.end());
    // A comment-only line suppresses the next line that has code on it.
    if (trim(file.code[li]).empty()) {
      std::size_t target = li + 1;
      while (target < file.code.size() && trim(file.code[target]).empty())
        ++target;
      if (target < file.code.size())
        out.allow[target + 1].insert(rules.begin(), rules.end());
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Config parsing (layers.toml subset)

namespace {

/// Parses `["a", "b"]` into items; returns false on malformed input.
bool parse_string_array(const std::string& value,
                        std::vector<std::string>& items) {
  const std::string inner = trim(value);
  if (inner.size() < 2 || inner.front() != '[' || inner.back() != ']')
    return false;
  std::size_t i = 1;
  const std::size_t end = inner.size() - 1;
  while (i < end) {
    while (i < end &&
           (std::isspace(static_cast<unsigned char>(inner[i])) != 0 ||
            inner[i] == ','))
      ++i;
    if (i >= end) break;
    if (inner[i] != '"') return false;
    const std::size_t close = inner.find('"', i + 1);
    if (close == std::string::npos || close > end) return false;
    items.push_back(inner.substr(i + 1, close - i - 1));
    i = close + 1;
  }
  return true;
}

}  // namespace

bool parse_config(const std::string& text, Config& config,
                  std::string& error) {
  config = Config{};
  enum class Section { kNone, kLayer, kAllow } section = Section::kNone;
  std::istringstream in(text);
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::size_t hash = raw.find('#');
    const std::string line =
        trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;
    if (line == "[[layer]]") {
      config.layers.push_back({});
      section = Section::kLayer;
      continue;
    }
    if (line == "[allow]") {
      section = Section::kAllow;
      continue;
    }
    if (line.front() == '[') {
      error = "line " + std::to_string(lineno) + ": unknown section " + line;
      return false;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      error = "line " + std::to_string(lineno) + ": expected key = value";
      return false;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (section == Section::kLayer) {
      if (config.layers.empty()) {
        error = "line " + std::to_string(lineno) + ": key outside [[layer]]";
        return false;
      }
      if (key == "name") {
        if (value.size() < 2 || value.front() != '"' || value.back() != '"') {
          error = "line " + std::to_string(lineno) + ": name wants a string";
          return false;
        }
        config.layers.back().name = value.substr(1, value.size() - 2);
      } else if (key == "paths") {
        if (!parse_string_array(value, config.layers.back().paths)) {
          error = "line " + std::to_string(lineno) + ": bad paths array";
          return false;
        }
      } else {
        error = "line " + std::to_string(lineno) + ": unknown layer key " + key;
        return false;
      }
    } else if (section == Section::kAllow) {
      if (!parse_string_array(value, config.allow[key])) {
        error = "line " + std::to_string(lineno) + ": bad allow array";
        return false;
      }
    } else {
      error = "line " + std::to_string(lineno) + ": key outside any section";
      return false;
    }
  }
  for (const Layer& layer : config.layers) {
    if (layer.name.empty() || layer.paths.empty()) {
      error = "every [[layer]] needs a name and a non-empty paths array";
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Source stripping

bool SourceFile::is_header() const {
  return path.size() > 4 ? (path.ends_with(".hpp") || path.ends_with(".h"))
                         : path.ends_with(".h");
}

SourceFile strip_source(std::string path, const std::string& text) {
  SourceFile out;
  out.path = std::move(path);

  // Capture quoted includes from the raw text first; stripping blanks string
  // contents, which is exactly where the include target lives.
  {
    std::istringstream in(text);
    std::string raw;
    std::size_t lineno = 0;
    bool in_block_comment = false;
    while (std::getline(in, raw)) {
      ++lineno;
      if (in_block_comment) {
        const std::size_t close = raw.find("*/");
        if (close == std::string::npos) continue;
        in_block_comment = false;
        raw = raw.substr(close + 2);
      }
      const std::string line = trim(raw);
      if (starts_with(line, "#include")) {
        const std::size_t open = line.find('"');
        if (open != std::string::npos) {
          const std::size_t close = line.find('"', open + 1);
          if (close != std::string::npos)
            out.includes.emplace_back(
                lineno, line.substr(open + 1, close - open - 1));
        }
      }
      // Track block comments that open on this line and stay open.
      std::size_t pos = 0;
      while ((pos = raw.find("/*", pos)) != std::string::npos) {
        const std::size_t line_comment = raw.find("//");
        if (line_comment != std::string::npos && line_comment < pos) break;
        const std::size_t close = raw.find("*/", pos + 2);
        if (close == std::string::npos) {
          in_block_comment = true;
          break;
        }
        pos = close + 2;
      }
    }
  }

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  } state = State::kCode;
  std::string code_line;
  std::string comment_line;
  std::string raw_delim;  // for raw strings: the `)delim"` terminator
  const std::size_t n = text.size();
  for (std::size_t i = 0; i <= n; ++i) {
    const char c = i < n ? text[i] : '\n';
    if (c == '\n') {
      out.code.push_back(code_line);
      out.comments.push_back(comment_line);
      code_line.clear();
      comment_line.clear();
      if (state == State::kLineComment) state = State::kCode;
      if (i == n) break;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
                   (i == 0 || !is_ident_char(text[i - 1]))) {
          std::size_t j = i + 2;
          while (j < n && text[j] != '(' && text[j] != '\n') ++j;
          raw_delim = ")" + text.substr(i + 2, j - i - 2) + "\"";
          code_line += "\"\"";
          state = State::kRawString;
          i = j;  // position at '('
        } else if (c == '"') {
          code_line += '"';
          state = State::kString;
        } else if (c == '\'') {
          code_line += '\'';
          state = State::kChar;
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          state = State::kCode;
          ++i;
        } else {
          comment_line += c;
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n) {
          ++i;
        } else if (c == '"') {
          code_line += '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          ++i;
        } else if (c == '\'') {
          code_line += '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Driver

struct Driver::Decls {
  /// Names whose declared type (or return type) is an unordered container.
  std::set<std::string> unordered;
};

Driver::Driver(Config config) : config_(std::move(config)) {}

void Driver::add_file(const std::string& path, const std::string& content) {
  files_.emplace(path, strip_source(path, content));
  known_paths_.insert(path);
}

void Driver::add_known_path(const std::string& path) {
  known_paths_.insert(path);
}

bool Driver::allowed(const std::string& rule, const std::string& path) const {
  const auto it = config_.allow.find(rule);
  if (it == config_.allow.end()) return false;
  return std::any_of(
      it->second.begin(), it->second.end(),
      [&path](const std::string& prefix) { return starts_with(path, prefix.c_str()); });
}

int Driver::layer_of(const std::string& path) const {
  int best = -1;
  std::size_t best_len = 0;
  for (std::size_t li = 0; li < config_.layers.size(); ++li) {
    for (const std::string& prefix : config_.layers[li].paths) {
      if (prefix.size() >= best_len && starts_with(path, prefix.c_str())) {
        best = static_cast<int>(li);
        best_len = prefix.size();
      }
    }
  }
  return best;
}

std::string Driver::resolve_include(const std::string& includer,
                                    const std::string& target) const {
  const std::string dir = dirname_of(includer);
  const std::string candidates[] = {target, "src/" + target,
                                    dir.empty() ? target : dir + "/" + target};
  for (const std::string& candidate : candidates) {
    if (known_paths_.count(candidate) != 0) return candidate;
  }
  return {};
}

namespace {

/// Collects names declared (or returned) as unordered containers, plus
/// aliases of unordered types, from one file's token stream. Also collects
/// names the file itself declares with an ORDERED std container: those
/// shadow same-named unordered declarations inherited from included headers
/// (a local `std::vector<...> blocked` is not the header's
/// `unordered_set<...>& blocked` parameter).
void collect_unordered_decls(const std::vector<Tok>& toks,
                             std::set<std::string>& names,
                             std::set<std::string>& ordered_names) {
  static const std::set<std::string> kOrderedContainers = {
      "vector", "array", "deque", "list",     "set",
      "map",    "span",  "multiset", "multimap"};
  std::set<std::string> aliases;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind == Tok::Kind::kIdent &&
        kOrderedContainers.count(toks[i].text) != 0 &&
        tok_is(toks, i + 1, "<") && i >= 2 && toks[i - 1].text == "::" &&
        toks[i - 2].text == "std") {
      std::size_t j = skip_angles(toks, i + 1);
      while (j < toks.size() &&
             (toks[j].text == "&" || toks[j].text == "*" ||
              toks[j].text == "const"))
        ++j;
      if (j < toks.size() && toks[j].kind == Tok::Kind::kIdent &&
          cpp_keywords().count(toks[j].text) == 0) {
        ordered_names.insert(toks[j].text);
      }
      continue;
    }
    const bool is_unordered_token = toks[i].kind == Tok::Kind::kIdent &&
                                    (toks[i].text == "unordered_map" ||
                                     toks[i].text == "unordered_set" ||
                                     toks[i].text == "unordered_multimap" ||
                                     toks[i].text == "unordered_multiset");
    if (!is_unordered_token || !tok_is(toks, i + 1, "<")) continue;
    // `using Alias = std::unordered_map<...>`
    if (i >= 3 && toks[i - 1].text == "::" && toks[i - 2].text == "std" &&
        toks[i - 3].text == "=" && i >= 5 && toks[i - 5].text == "using") {
      aliases.insert(toks[i - 4].text);
    }
    std::size_t j = skip_angles(toks, i + 1);
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const"))
      ++j;
    if (j < toks.size() && toks[j].kind == Tok::Kind::kIdent &&
        cpp_keywords().count(toks[j].text) == 0) {
      names.insert(toks[j].text);
    }
  }
  if (aliases.empty()) return;
  // Second pass: `Alias name` declarations.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind == Tok::Kind::kIdent && aliases.count(toks[i].text) != 0 &&
        toks[i + 1].kind == Tok::Kind::kIdent &&
        cpp_keywords().count(toks[i + 1].text) == 0 &&
        (i == 0 || toks[i - 1].text != "::")) {
      names.insert(toks[i + 1].text);
    }
  }
}

}  // namespace

void Driver::check_determinism(const SourceFile& file, const Decls& decls,
                               std::vector<Finding>& out) const {
  const std::vector<Tok> toks = tokenize(file.code);

  static const std::set<std::string> kGlobalRngCalls = {
      "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48", "srand48"};
  static const std::set<std::string> kClockCalls = {
      "time",          "clock",      "gettimeofday", "clock_gettime",
      "timespec_get",  "localtime",  "localtime_r",  "gmtime",
      "gmtime_r",      "ftime"};
  static const std::set<std::string> kTimeHeaders = {"chrono", "ctime",
                                                     "time.h", "sys/time.h"};
  static const std::set<std::string> kStampMacros = {"__DATE__", "__TIME__",
                                                     "__TIMESTAMP__"};

  // `#include <chrono>` and friends count as RNL003: pulling in a clock is
  // the first step of using one, and the allowlist covers the legit sites.
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string line = trim(file.code[li]);
    if (!starts_with(line, "#include")) continue;
    const std::size_t open = line.find('<');
    const std::size_t close = line.find('>');
    if (open == std::string::npos || close == std::string::npos) continue;
    const std::string header = line.substr(open + 1, close - open - 1);
    if (kTimeHeaders.count(header) != 0) {
      out.push_back({file.path, li + 1, "RNL003",
                     "#include <" + header +
                         "> pulls in wall-clock time; experiment results "
                         "must be pure in (seed, trial index)"});
    }
  }

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& tok = toks[i];
    if (tok.kind != Tok::Kind::kIdent) continue;
    const bool member_access =
        i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
    if (tok.text == "random_device") {
      out.push_back({file.path, tok.line, "RNL001",
                     "std::random_device is a nondeterministic seed source; "
                     "derive seeds from support::Rng::split instead"});
    } else if (!member_access && kGlobalRngCalls.count(tok.text) != 0 &&
               tok_is(toks, i + 1, "(")) {
      out.push_back({file.path, tok.line, "RNL002",
                     tok.text +
                         "() uses hidden global RNG state; use the "
                         "support::Rng passed down from the trial seed"});
    } else if (tok.text == "chrono") {
      out.push_back({file.path, tok.line, "RNL003",
                     "std::chrono reads the wall clock; results must not "
                     "depend on time (allowlist covers timing metadata)"});
    } else if (!member_access && kClockCalls.count(tok.text) != 0 &&
               tok_is(toks, i + 1, "(")) {
      out.push_back({file.path, tok.line, "RNL003",
                     tok.text + "() reads the wall clock; results must be "
                                "pure in (seed, trial index)"});
    } else if (kStampMacros.count(tok.text) != 0) {
      out.push_back({file.path, tok.line, "RNL004",
                     tok.text + " bakes the build time into the binary; "
                                "outputs would differ across rebuilds"});
    }
  }

  // RNL006: pointer values as keys or sort inputs.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::Kind::kIdent) continue;
    if ((toks[i].text == "hash" || toks[i].text == "less" ||
         toks[i].text == "greater") &&
        tok_is(toks, i + 1, "<")) {
      const std::size_t end = skip_angles(toks, i + 1);
      if (end >= 2 && end <= toks.size() && toks[end - 2].text == "*") {
        out.push_back({file.path, toks[i].line, "RNL006",
                       "std::" + toks[i].text +
                           "<T*> keys on pointer values, which vary run to "
                           "run; key on a stable id instead"});
      }
    }
    if ((toks[i].text == "reinterpret_cast" || toks[i].text == "bit_cast") &&
        tok_is(toks, i + 1, "<")) {
      const std::size_t end = skip_angles(toks, i + 1);
      for (std::size_t j = i + 2; j + 1 < end; ++j) {
        if (toks[j].text == "uintptr_t" || toks[j].text == "intptr_t") {
          out.push_back({file.path, toks[i].line, "RNL006",
                         "casting a pointer to an integer leaks the "
                         "allocator's addresses into values; use a stable id"});
          break;
        }
      }
    }
  }

  // RNL005: iteration over unordered containers.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "for" || !tok_is(toks, i + 1, "(")) continue;
    int depth = 0;
    std::size_t close = i + 1;
    for (; close < toks.size(); ++close) {
      if (toks[close].text == "(") ++depth;
      if (toks[close].text == ")" && --depth == 0) break;
    }
    if (close >= toks.size()) continue;
    // Range-for: top-level `:` between the parens.
    std::size_t colon = 0;
    int inner = 0;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (toks[j].text == "(" || toks[j].text == "[" || toks[j].text == "{")
        ++inner;
      if (toks[j].text == ")" || toks[j].text == "]" || toks[j].text == "}")
        --inner;
      if (inner == 0 && toks[j].text == ":") {
        colon = j;
        break;
      }
    }
    std::string culprit;
    if (colon != 0) {
      // Identify the ranged expression's final name: `x`, `a.b`, `f()`,
      // `a.f()` all reduce to the identifier before the optional call parens.
      std::size_t last = close - 1;
      if (toks[last].text == ")") {
        int call = 0;
        while (last > colon) {
          if (toks[last].text == ")") ++call;
          if (toks[last].text == "(" && --call == 0) break;
          --last;
        }
        --last;  // token before '('
      }
      if (last > colon && toks[last].kind == Tok::Kind::kIdent &&
          decls.unordered.count(toks[last].text) != 0) {
        culprit = toks[last].text;
      }
      for (std::size_t j = colon + 1; j < close && culprit.empty(); ++j) {
        if (toks[j].text == "unordered_map" ||
            toks[j].text == "unordered_set") {
          culprit = toks[j].text + " temporary";
        }
      }
    } else {
      // Iterator loop: `for (auto it = x.begin(); ...`.
      for (std::size_t j = i + 2; j + 2 < close; ++j) {
        if (toks[j].text == ";") break;
        if ((toks[j + 2].text == "begin" || toks[j + 2].text == "cbegin") &&
            toks[j + 1].text == "." && toks[j].kind == Tok::Kind::kIdent &&
            decls.unordered.count(toks[j].text) != 0) {
          culprit = toks[j].text;
          break;
        }
      }
    }
    if (!culprit.empty()) {
      out.push_back(
          {file.path, toks[i].line, "RNL005",
           "iterating unordered container '" + culprit +
               "' — bucket order is implementation-defined and can leak "
               "into results; extract keys and sort, or justify with a "
               "suppression"});
    }
  }
}

void Driver::check_layering(const SourceFile& file,
                            std::vector<Finding>& out) const {
  const int my_layer = layer_of(file.path);
  if (my_layer < 0) {
    out.push_back({file.path, 1, "RNL102",
                   "file is not covered by the layer map "
                   "(tools/lint/layers.toml); add it to a layer"});
    return;
  }
  for (const auto& [line, target] : file.includes) {
    const std::string resolved = resolve_include(file.path, target);
    if (resolved.empty()) {
      out.push_back({file.path, line, "RNL102",
                     "quoted include \"" + target +
                         "\" does not resolve to a first-party file; use "
                         "<...> for system headers"});
      continue;
    }
    const int inc_layer = layer_of(resolved);
    if (inc_layer < 0) continue;  // reported on the file itself
    if (inc_layer > my_layer) {
      out.push_back(
          {file.path, line, "RNL101",
           "include of \"" + target + "\" reaches up the layer DAG (" +
               config_.layers[static_cast<std::size_t>(my_layer)].name +
               " -> " +
               config_.layers[static_cast<std::size_t>(inc_layer)].name +
               "); only same-or-lower layers may be included"});
    }
  }
}

void Driver::check_hygiene(const SourceFile& file,
                           std::vector<Finding>& out) const {
  if (file.is_header()) {
    bool has_pragma = false;
    for (const std::string& line : file.code) {
      if (trim(line) == "#pragma once") {
        has_pragma = true;
        break;
      }
    }
    if (!has_pragma) {
      out.push_back({file.path, 1, "RNL201",
                     "header is missing #pragma once"});
    }
    const std::vector<Tok> toks = tokenize(file.code);
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].text == "using" && toks[i + 1].text == "namespace") {
        out.push_back({file.path, toks[i].line, "RNL202",
                       "using namespace in a header leaks into every "
                       "includer; qualify names instead"});
      }
    }
  }
  for (std::size_t li = 0; li < file.comments.size(); ++li) {
    const std::string& comment = file.comments[li];
    std::size_t pos = comment.find("NOLINT");
    if (pos == std::string::npos) continue;
    const std::string rest = comment.substr(pos);
    bool ok = false;
    if (starts_with(rest, "NOLINTEND")) {
      ok = true;  // closing marker inherits the BEGIN's justification
    } else {
      const std::size_t open = rest.find('(');
      const std::size_t close = rest.find(')');
      if (open != std::string::npos && close != std::string::npos &&
          close > open + 1) {
        const std::string reason = trim(rest.substr(close + 1));
        ok = !reason.empty();
      }
    }
    if (!ok) {
      out.push_back({file.path, li + 1, "RNL203",
                     "NOLINT needs a rule name and a reason, e.g. "
                     "// NOLINT(check-name): why it is safe here"});
    }
  }
}

Driver::Result Driver::run() {
  Result result;

  // Per-file unordered-name tables, then merge along the include graph so a
  // .cpp sees the members declared in the headers it pulls in. A name the
  // file itself declares with an ordered container shadows an inherited
  // unordered declaration of the same name.
  std::map<std::string, std::set<std::string>> own_unordered;
  std::map<std::string, std::set<std::string>> own_ordered;
  for (const auto& [path, file] : files_) {
    collect_unordered_decls(tokenize(file.code), own_unordered[path],
                            own_ordered[path]);
  }
  std::map<std::string, Decls> merged;
  for (const auto& [path, file] : files_) {
    std::set<std::string> visited;
    std::vector<std::string> stack = {path};
    Decls decls;
    while (!stack.empty()) {
      const std::string current = stack.back();
      stack.pop_back();
      if (!visited.insert(current).second) continue;
      const auto decl_it = own_unordered.find(current);
      if (decl_it != own_unordered.end()) {
        decls.unordered.insert(decl_it->second.begin(), decl_it->second.end());
      }
      const auto file_it = files_.find(current);
      if (file_it == files_.end()) continue;
      for (const auto& [line, target] : file_it->second.includes) {
        const std::string resolved = resolve_include(current, target);
        if (!resolved.empty()) stack.push_back(resolved);
      }
    }
    for (const std::string& name : own_ordered.at(path)) {
      if (own_unordered.at(path).count(name) == 0) decls.unordered.erase(name);
    }
    merged.emplace(path, std::move(decls));
  }

  for (const auto& [path, file] : files_) {
    ++result.files_checked;
    std::vector<Finding> raw;
    check_determinism(file, merged.at(path), raw);
    check_layering(file, raw);
    check_hygiene(file, raw);

    const LineSuppressions suppressions = collect_suppressions(file);
    for (const std::size_t line : suppressions.malformed) {
      raw.push_back({path, line, "RNL204",
                     "malformed suppression; expected "
                     "`reconfnet-lint: allow(RNLxxx) reason`"});
    }
    for (Finding& finding : raw) {
      if (allowed(finding.rule, path)) continue;
      const auto it = suppressions.allow.find(finding.line);
      if (finding.rule != "RNL204" && it != suppressions.allow.end() &&
          it->second.count(finding.rule) != 0) {
        ++result.suppressed;
        continue;
      }
      result.findings.push_back(std::move(finding));
    }
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  // The include-line scan and the token scan can both flag the same site
  // (e.g. `#include <chrono>`); report each (file, line, rule) once.
  result.findings.erase(
      std::unique(result.findings.begin(), result.findings.end(),
                  [](const Finding& a, const Finding& b) {
                    return std::tie(a.file, a.line, a.rule) ==
                           std::tie(b.file, b.line, b.rule);
                  }),
      result.findings.end());
  return result;
}

}  // namespace reconfnet::lint
