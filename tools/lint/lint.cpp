#include "lint.hpp"

#include <algorithm>
#include <utility>

namespace reconfnet::lint {

using textscan::Tok;
using textscan::cpp_keywords;
using textscan::dirname_of;
using textscan::skip_angles;
using textscan::starts_with;
using textscan::tok_is;
using textscan::tokenize;
using textscan::trim;

// ---------------------------------------------------------------------------
// Rule catalogue

const std::vector<textscan::RuleInfo>& rules() {
  static const std::vector<textscan::RuleInfo> kRules = {
      {"RNL001", "std::random_device (nondeterministic seed source)"},
      {"RNL002", "rand()/srand()/*rand48 (hidden global-state RNG)"},
      {"RNL003", "wall-clock input (std::chrono, time(), ...)"},
      {"RNL004", "__DATE__/__TIME__/__TIMESTAMP__ build stamps"},
      {"RNL005", "iteration over an unordered container"},
      {"RNL006", "pointer values used as keys"},
      {"RNL101", "include of a higher layer"},
      {"RNL102", "file or include not covered by the layer map"},
      {"RNL201", "header without #pragma once"},
      {"RNL202", "using namespace in a header"},
      {"RNL203", "NOLINT without a rule name and reason"},
      {"RNL204", "malformed reconfnet-lint suppression"},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// Config parsing (layers.toml subset)

bool parse_config(const std::string& text, Config& config,
                  std::string& error) {
  config = Config{};
  std::vector<textscan::TomlSection> sections;
  if (!textscan::parse_toml_subset(text, sections, error)) return false;
  for (const auto& section : sections) {
    if (section.is_array_of_tables && section.name == "layer") {
      config.layers.push_back({});
      for (const auto& entry : section.entries) {
        if (entry.key == "name" && !entry.is_array) {
          config.layers.back().name = entry.scalar;
        } else if (entry.key == "paths" && entry.is_array) {
          config.layers.back().paths = entry.items;
        } else {
          error = "line " + std::to_string(entry.line) +
                  ": bad layer key " + entry.key +
                  " (want name = \"...\" or paths = [...])";
          return false;
        }
      }
    } else if (!section.is_array_of_tables && section.name == "allow") {
      for (const auto& entry : section.entries) {
        if (!entry.is_array) {
          error = "line " + std::to_string(entry.line) + ": bad allow array";
          return false;
        }
        config.allow[entry.key] = entry.items;
      }
    } else {
      error = "line " + std::to_string(section.line) + ": unknown section " +
              section.name;
      return false;
    }
  }
  for (const Layer& layer : config.layers) {
    if (layer.name.empty() || layer.paths.empty()) {
      error = "every [[layer]] needs a name and a non-empty paths array";
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Driver

struct Driver::Decls {
  /// Names whose declared type (or return type) is an unordered container.
  std::set<std::string> unordered;
};

Driver::Driver(Config config) : config_(std::move(config)) {}

void Driver::add_file(const std::string& path, const std::string& content) {
  files_.emplace(path, strip_source(path, content));
  known_paths_.insert(path);
}

void Driver::add_known_path(const std::string& path) {
  known_paths_.insert(path);
}

bool Driver::allowed(const std::string& rule, const std::string& path) const {
  const auto it = config_.allow.find(rule);
  if (it == config_.allow.end()) return false;
  return textscan::matches_any_prefix(path, it->second);
}

int Driver::layer_of(const std::string& path) const {
  int best = -1;
  std::size_t best_len = 0;
  for (std::size_t li = 0; li < config_.layers.size(); ++li) {
    for (const std::string& prefix : config_.layers[li].paths) {
      if (prefix.size() >= best_len && starts_with(path, prefix.c_str())) {
        best = static_cast<int>(li);
        best_len = prefix.size();
      }
    }
  }
  return best;
}

std::string Driver::resolve_include(const std::string& includer,
                                    const std::string& target) const {
  const std::string dir = dirname_of(includer);
  const std::string candidates[] = {target, "src/" + target,
                                    dir.empty() ? target : dir + "/" + target};
  for (const std::string& candidate : candidates) {
    const std::string normalized = textscan::lexical_normalize(candidate);
    if (known_paths_.count(normalized) != 0) return normalized;
  }
  return {};
}

namespace {

/// Collects names declared (or returned) as unordered containers, plus
/// aliases of unordered types, from one file's token stream. Also collects
/// names the file itself declares with an ORDERED std container: those
/// shadow same-named unordered declarations inherited from included headers
/// (a local `std::vector<...> blocked` is not the header's
/// `unordered_set<...>& blocked` parameter).
void collect_unordered_decls(const std::vector<Tok>& toks,
                             std::set<std::string>& names,
                             std::set<std::string>& ordered_names) {
  static const std::set<std::string> kOrderedContainers = {
      "vector", "array", "deque", "list",     "set",
      "map",    "span",  "multiset", "multimap"};
  std::set<std::string> aliases;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind == Tok::Kind::kIdent &&
        kOrderedContainers.count(toks[i].text) != 0 &&
        tok_is(toks, i + 1, "<") && i >= 2 && toks[i - 1].text == "::" &&
        toks[i - 2].text == "std") {
      std::size_t j = skip_angles(toks, i + 1);
      while (j < toks.size() &&
             (toks[j].text == "&" || toks[j].text == "*" ||
              toks[j].text == "const"))
        ++j;
      if (j < toks.size() && toks[j].kind == Tok::Kind::kIdent &&
          cpp_keywords().count(toks[j].text) == 0) {
        ordered_names.insert(toks[j].text);
      }
      continue;
    }
    const bool is_unordered_token = toks[i].kind == Tok::Kind::kIdent &&
                                    (toks[i].text == "unordered_map" ||
                                     toks[i].text == "unordered_set" ||
                                     toks[i].text == "unordered_multimap" ||
                                     toks[i].text == "unordered_multiset");
    if (!is_unordered_token || !tok_is(toks, i + 1, "<")) continue;
    // `using Alias = std::unordered_map<...>`
    if (i >= 3 && toks[i - 1].text == "::" && toks[i - 2].text == "std" &&
        toks[i - 3].text == "=" && i >= 5 && toks[i - 5].text == "using") {
      aliases.insert(toks[i - 4].text);
    }
    std::size_t j = skip_angles(toks, i + 1);
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const"))
      ++j;
    if (j < toks.size() && toks[j].kind == Tok::Kind::kIdent &&
        cpp_keywords().count(toks[j].text) == 0) {
      names.insert(toks[j].text);
    }
  }
  if (aliases.empty()) return;
  // Second pass: `Alias name` declarations.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind == Tok::Kind::kIdent && aliases.count(toks[i].text) != 0 &&
        toks[i + 1].kind == Tok::Kind::kIdent &&
        cpp_keywords().count(toks[i + 1].text) == 0 &&
        (i == 0 || toks[i - 1].text != "::")) {
      names.insert(toks[i + 1].text);
    }
  }
}

}  // namespace

void Driver::check_determinism(const SourceFile& file, const Decls& decls,
                               std::vector<Finding>& out) const {
  const std::vector<Tok> toks = tokenize(file.code);

  static const std::set<std::string> kGlobalRngCalls = {
      "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48", "srand48"};
  static const std::set<std::string> kClockCalls = {
      "time",          "clock",      "gettimeofday", "clock_gettime",
      "timespec_get",  "localtime",  "localtime_r",  "gmtime",
      "gmtime_r",      "ftime"};
  static const std::set<std::string> kTimeHeaders = {"chrono", "ctime",
                                                     "time.h", "sys/time.h"};
  static const std::set<std::string> kStampMacros = {"__DATE__", "__TIME__",
                                                     "__TIMESTAMP__"};

  // `#include <chrono>` and friends count as RNL003: pulling in a clock is
  // the first step of using one, and the allowlist covers the legit sites.
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string line = trim(file.code[li]);
    if (!starts_with(line, "#include")) continue;
    const std::size_t open = line.find('<');
    const std::size_t close = line.find('>');
    if (open == std::string::npos || close == std::string::npos) continue;
    const std::string header = line.substr(open + 1, close - open - 1);
    if (kTimeHeaders.count(header) != 0) {
      out.push_back({file.path, li + 1, "RNL003",
                     "#include <" + header +
                         "> pulls in wall-clock time; experiment results "
                         "must be pure in (seed, trial index)"});
    }
  }

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Tok& tok = toks[i];
    if (tok.kind != Tok::Kind::kIdent) continue;
    const bool member_access =
        i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
    if (tok.text == "random_device") {
      out.push_back({file.path, tok.line, "RNL001",
                     "std::random_device is a nondeterministic seed source; "
                     "derive seeds from support::Rng::split instead"});
    } else if (!member_access && kGlobalRngCalls.count(tok.text) != 0 &&
               tok_is(toks, i + 1, "(")) {
      out.push_back({file.path, tok.line, "RNL002",
                     tok.text +
                         "() uses hidden global RNG state; use the "
                         "support::Rng passed down from the trial seed"});
    } else if (tok.text == "chrono") {
      out.push_back({file.path, tok.line, "RNL003",
                     "std::chrono reads the wall clock; results must not "
                     "depend on time (allowlist covers timing metadata)"});
    } else if (!member_access && kClockCalls.count(tok.text) != 0 &&
               tok_is(toks, i + 1, "(")) {
      out.push_back({file.path, tok.line, "RNL003",
                     tok.text + "() reads the wall clock; results must be "
                                "pure in (seed, trial index)"});
    } else if (kStampMacros.count(tok.text) != 0) {
      out.push_back({file.path, tok.line, "RNL004",
                     tok.text + " bakes the build time into the binary; "
                                "outputs would differ across rebuilds"});
    }
  }

  // RNL006: pointer values as keys or sort inputs.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::Kind::kIdent) continue;
    if ((toks[i].text == "hash" || toks[i].text == "less" ||
         toks[i].text == "greater") &&
        tok_is(toks, i + 1, "<")) {
      const std::size_t end = skip_angles(toks, i + 1);
      if (end >= 2 && end <= toks.size() && toks[end - 2].text == "*") {
        out.push_back({file.path, toks[i].line, "RNL006",
                       "std::" + toks[i].text +
                           "<T*> keys on pointer values, which vary run to "
                           "run; key on a stable id instead"});
      }
    }
    if ((toks[i].text == "reinterpret_cast" || toks[i].text == "bit_cast") &&
        tok_is(toks, i + 1, "<")) {
      const std::size_t end = skip_angles(toks, i + 1);
      for (std::size_t j = i + 2; j + 1 < end; ++j) {
        if (toks[j].text == "uintptr_t" || toks[j].text == "intptr_t") {
          out.push_back({file.path, toks[i].line, "RNL006",
                         "casting a pointer to an integer leaks the "
                         "allocator's addresses into values; use a stable id"});
          break;
        }
      }
    }
  }

  // RNL005: iteration over unordered containers.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "for" || !tok_is(toks, i + 1, "(")) continue;
    int depth = 0;
    std::size_t close = i + 1;
    for (; close < toks.size(); ++close) {
      if (toks[close].text == "(") ++depth;
      if (toks[close].text == ")" && --depth == 0) break;
    }
    if (close >= toks.size()) continue;
    // Range-for: top-level `:` between the parens.
    std::size_t colon = 0;
    int inner = 0;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (toks[j].text == "(" || toks[j].text == "[" || toks[j].text == "{")
        ++inner;
      if (toks[j].text == ")" || toks[j].text == "]" || toks[j].text == "}")
        --inner;
      if (inner == 0 && toks[j].text == ":") {
        colon = j;
        break;
      }
    }
    std::string culprit;
    if (colon != 0) {
      // Identify the ranged expression's final name: `x`, `a.b`, `f()`,
      // `a.f()` all reduce to the identifier before the optional call parens.
      std::size_t last = close - 1;
      if (toks[last].text == ")") {
        int call = 0;
        while (last > colon) {
          if (toks[last].text == ")") ++call;
          if (toks[last].text == "(" && --call == 0) break;
          --last;
        }
        --last;  // token before '('
      }
      if (last > colon && toks[last].kind == Tok::Kind::kIdent &&
          decls.unordered.count(toks[last].text) != 0) {
        culprit = toks[last].text;
      }
      for (std::size_t j = colon + 1; j < close && culprit.empty(); ++j) {
        if (toks[j].text == "unordered_map" ||
            toks[j].text == "unordered_set") {
          culprit = toks[j].text + " temporary";
        }
      }
    } else {
      // Iterator loop: `for (auto it = x.begin(); ...`.
      for (std::size_t j = i + 2; j + 2 < close; ++j) {
        if (toks[j].text == ";") break;
        if ((toks[j + 2].text == "begin" || toks[j + 2].text == "cbegin") &&
            toks[j + 1].text == "." && toks[j].kind == Tok::Kind::kIdent &&
            decls.unordered.count(toks[j].text) != 0) {
          culprit = toks[j].text;
          break;
        }
      }
    }
    if (!culprit.empty()) {
      out.push_back(
          {file.path, toks[i].line, "RNL005",
           "iterating unordered container '" + culprit +
               "' — bucket order is implementation-defined and can leak "
               "into results; extract keys and sort, or justify with a "
               "suppression"});
    }
  }
}

void Driver::check_layering(const SourceFile& file,
                            std::vector<Finding>& out) const {
  const int my_layer = layer_of(file.path);
  if (my_layer < 0) {
    out.push_back({file.path, 1, "RNL102",
                   "file is not covered by the layer map "
                   "(tools/lint/layers.toml); add it to a layer"});
    return;
  }
  for (const auto& [line, target] : file.includes) {
    const std::string resolved = resolve_include(file.path, target);
    if (resolved.empty()) {
      out.push_back({file.path, line, "RNL102",
                     "quoted include \"" + target +
                         "\" does not resolve to a first-party file; use "
                         "<...> for system headers"});
      continue;
    }
    const int inc_layer = layer_of(resolved);
    if (inc_layer < 0) continue;  // reported on the file itself
    if (inc_layer > my_layer) {
      out.push_back(
          {file.path, line, "RNL101",
           "include of \"" + target + "\" reaches up the layer DAG (" +
               config_.layers[static_cast<std::size_t>(my_layer)].name +
               " -> " +
               config_.layers[static_cast<std::size_t>(inc_layer)].name +
               "); only same-or-lower layers may be included"});
    }
  }
}

void Driver::check_hygiene(const SourceFile& file,
                           std::vector<Finding>& out) const {
  if (file.is_header()) {
    bool has_pragma = false;
    for (const std::string& line : file.code) {
      if (trim(line) == "#pragma once") {
        has_pragma = true;
        break;
      }
    }
    if (!has_pragma) {
      out.push_back({file.path, 1, "RNL201",
                     "header is missing #pragma once"});
    }
    const std::vector<Tok> toks = tokenize(file.code);
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].text == "using" && toks[i + 1].text == "namespace") {
        out.push_back({file.path, toks[i].line, "RNL202",
                       "using namespace in a header leaks into every "
                       "includer; qualify names instead"});
      }
    }
  }
  for (std::size_t li = 0; li < file.comments.size(); ++li) {
    const std::string& comment = file.comments[li];
    std::size_t pos = comment.find("NOLINT");
    if (pos == std::string::npos) continue;
    const std::string rest = comment.substr(pos);
    bool ok = false;
    if (starts_with(rest, "NOLINTEND")) {
      ok = true;  // closing marker inherits the BEGIN's justification
    } else {
      const std::size_t open = rest.find('(');
      const std::size_t close = rest.find(')');
      if (open != std::string::npos && close != std::string::npos &&
          close > open + 1) {
        const std::string reason = trim(rest.substr(close + 1));
        ok = !reason.empty();
      }
    }
    if (!ok) {
      out.push_back({file.path, li + 1, "RNL203",
                     "NOLINT needs a rule name and a reason, e.g. "
                     "// NOLINT(check-name): why it is safe here"});
    }
  }
}

Driver::Result Driver::run() {
  Result result;

  // Per-file unordered-name tables, then merge along the include graph so a
  // .cpp sees the members declared in the headers it pulls in. A name the
  // file itself declares with an ordered container shadows an inherited
  // unordered declaration of the same name.
  std::map<std::string, std::set<std::string>> own_unordered;
  std::map<std::string, std::set<std::string>> own_ordered;
  for (const auto& [path, file] : files_) {
    collect_unordered_decls(tokenize(file.code), own_unordered[path],
                            own_ordered[path]);
  }
  std::map<std::string, Decls> merged;
  for (const auto& [path, file] : files_) {
    std::set<std::string> visited;
    std::vector<std::string> stack = {path};
    Decls decls;
    while (!stack.empty()) {
      const std::string current = stack.back();
      stack.pop_back();
      if (!visited.insert(current).second) continue;
      const auto decl_it = own_unordered.find(current);
      if (decl_it != own_unordered.end()) {
        decls.unordered.insert(decl_it->second.begin(), decl_it->second.end());
      }
      const auto file_it = files_.find(current);
      if (file_it == files_.end()) continue;
      for (const auto& [line, target] : file_it->second.includes) {
        const std::string resolved = resolve_include(current, target);
        if (!resolved.empty()) stack.push_back(resolved);
      }
    }
    for (const std::string& name : own_ordered.at(path)) {
      if (own_unordered.at(path).count(name) == 0) decls.unordered.erase(name);
    }
    merged.emplace(path, std::move(decls));
  }

  for (const auto& [path, file] : files_) {
    ++result.files_checked;
    std::vector<Finding> raw;
    check_determinism(file, merged.at(path), raw);
    check_layering(file, raw);
    check_hygiene(file, raw);

    const textscan::LineSuppressions suppressions =
        textscan::collect_suppressions(file, "reconfnet-lint:", "RNL");
    for (const std::size_t line : suppressions.malformed) {
      raw.push_back({path, line, "RNL204",
                     "malformed suppression; expected "
                     "`reconfnet-lint: allow(RNLxxx) reason`"});
    }
    std::set<std::pair<std::size_t, std::string>> used;
    for (Finding& finding : raw) {
      if (allowed(finding.rule, path)) {
        result.suppressed_findings.push_back(std::move(finding));
        continue;
      }
      const auto it = suppressions.allow.find(finding.line);
      if (finding.rule != "RNL204" && it != suppressions.allow.end() &&
          it->second.count(finding.rule) != 0) {
        ++result.suppressed;
        used.insert({finding.line, finding.rule});
        result.suppressed_findings.push_back(std::move(finding));
        continue;
      }
      result.findings.push_back(std::move(finding));
    }
    const auto stale = textscan::stale_suppressions(path, suppressions, used);
    result.stale.insert(result.stale.end(), stale.begin(), stale.end());
  }

  textscan::sort_and_dedupe(result.findings);
  textscan::sort_and_dedupe(result.suppressed_findings);
  return result;
}

}  // namespace reconfnet::lint
