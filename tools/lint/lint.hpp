// reconfnet_lint — domain-specific static checker for the reconfnet tree.
//
// The determinism contract (every experiment is a pure function of
// (master_seed, trial_index); --jobs N is byte-identical to --jobs 1) and the
// layer DAG are enforced here, ahead of the runtime tests that would only
// catch a breach after the fact. The checker is deliberately zero-dependency:
// the shared scanning machinery lives in tools/lint/textscan.{hpp,cpp}
// (tokenizer, source stripper, suppression parser, TOML subset), which
// reconfnet_protocheck (tools/protocheck/) builds on as well.
//
// Rule families (each finding prints `file:line: RNLxxx message`):
//
//   Determinism (RNL0xx)
//     RNL001  std::random_device — nondeterministic seed source
//     RNL002  rand()/srand()/*rand48 — hidden global-state RNG
//     RNL003  std::chrono / time() / clock_gettime() etc. — wall-clock input
//     RNL004  __DATE__/__TIME__/__TIMESTAMP__ — build-time stamps
//     RNL005  iteration over std::unordered_map/unordered_set — bucket order
//             is implementation-defined; extract + sort instead
//     RNL006  pointer values as keys (std::hash<T*>, std::less<T*>,
//             reinterpret_cast to uintptr_t) — addresses vary per run
//
//   Layering (RNL1xx) — the include DAG from tools/lint/layers.toml
//     RNL101  include of a higher layer (upward/cross-layer edge)
//     RNL102  file or quoted include not covered by the layer map
//
//   Hygiene (RNL2xx)
//     RNL201  header without #pragma once
//     RNL202  using namespace in a header
//     RNL203  NOLINT without a rule name and reason
//     RNL204  malformed reconfnet-lint suppression comment
//
// Suppressions: `// reconfnet-lint: allow(RNLnnn) <reason>` on the offending
// line or alone on the line above. Path-level allowances live in the
// [allow] section of the config (e.g. the RNG implementation itself).
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "textscan.hpp"

namespace reconfnet::lint {

using textscan::Finding;
using textscan::SourceFile;
using textscan::strip_source;

/// One layer of the include DAG. Layers are ordered bottom -> top; a file may
/// include files whose layer index is <= its own. `paths` entries are
/// repo-relative prefixes ("src/support/") or file-stem prefixes
/// ("src/sim/metrics."); the longest matching prefix across all layers wins,
/// so a single file can be carved out of its directory's layer.
struct Layer {
  std::string name;
  std::vector<std::string> paths;
};

struct Config {
  std::vector<Layer> layers;
  /// rule id -> path prefixes where the rule is switched off wholesale.
  std::map<std::string, std::vector<std::string>> allow;
};

/// Parses the layers.toml subset: [[layer]] tables with name/paths, and an
/// [allow] table mapping rule ids to path arrays. Returns false and fills
/// `error` on malformed input.
bool parse_config(const std::string& text, Config& config, std::string& error);

/// The static rule catalogue (--list-rules output).
const std::vector<textscan::RuleInfo>& rules();

class Driver {
 public:
  explicit Driver(Config config);

  /// Registers a file for the run. Paths must be repo-relative with '/'
  /// separators; contents are stripped immediately.
  void add_file(const std::string& path, const std::string& content);

  /// Registers a path for include resolution only (not linted). Lets a
  /// partial run (explicit file arguments) resolve includes of files that
  /// are not themselves being checked.
  void add_known_path(const std::string& path);

  struct Result {
    std::vector<Finding> findings;  // sorted by (file, line, rule)
    /// Findings dropped by an inline allow or an [allow] carve-out, kept for
    /// SARIF suppression records.
    std::vector<Finding> suppressed_findings;
    /// Inline suppression comments whose rule no longer fires on the line
    /// they cover (the --stale-suppressions report).
    std::vector<textscan::StaleSuppression> stale;
    std::size_t files_checked = 0;
    std::size_t suppressed = 0;
  };

  /// Runs every rule over the registered files. Deterministic: files are
  /// processed in sorted path order and findings are sorted.
  Result run();

 private:
  struct Decls;

  [[nodiscard]] bool allowed(const std::string& rule,
                             const std::string& path) const;
  [[nodiscard]] int layer_of(const std::string& path) const;
  [[nodiscard]] std::string resolve_include(const std::string& includer,
                                            const std::string& target) const;

  void check_determinism(const SourceFile& file, const Decls& decls,
                         std::vector<Finding>& out) const;
  void check_layering(const SourceFile& file, std::vector<Finding>& out) const;
  void check_hygiene(const SourceFile& file, std::vector<Finding>& out) const;

  Config config_;
  std::map<std::string, SourceFile> files_;
  std::set<std::string> known_paths_;
};

}  // namespace reconfnet::lint
