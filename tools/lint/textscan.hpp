// Shared source-scanning machinery for the reconfnet static checkers
// (reconfnet_lint in tools/lint/, reconfnet_protocheck in tools/protocheck/,
// reconfnet_hotcheck in tools/hotcheck/, reconfnet_racecheck in
// tools/racecheck/, reconfnet_oraclecheck in tools/oraclecheck/).
//
// The tools are deliberately zero-dependency: they tokenise and light-parse
// the sources themselves (no libclang), so they build and run on the
// gcc-only dev container and in CI alike, and both can be bootstrap-compiled
// from a handful of files with no build tree configured. Everything that is
// not rule logic lives here:
//
//   * Finding              — one rule-coded diagnostic (file:line: RULE msg)
//   * strip_source         — comment/string stripping preserving line structure
//   * tokenize             — identifier/punctuation token stream
//   * collect_suppressions — `<marker> allow(XYZnnn) reason` comments, with
//                            the marker and rule prefix chosen per tool
//   * parse_toml_subset    — the small TOML dialect both config files use
//                            ([[table]] arrays, [table]s, string/array values)
//   * write_sarif          — SARIF 2.1.0 export for CI code-scanning upload
#pragma once

#include <cstddef>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace reconfnet::textscan {

// ---------------------------------------------------------------------------
// Findings

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;      // "RNL001", "RNP304", ...
  std::string message;
};

/// Sorts by (file, line, rule) and drops exact (file, line, rule) duplicates
/// (two scans may flag the same site). The canonical report order.
void sort_and_dedupe(std::vector<Finding>& findings);

// ---------------------------------------------------------------------------
// Small string helpers

bool starts_with(const std::string& s, const char* prefix);
std::string trim(const std::string& s);
bool is_ident_char(char c);
bool is_ident_start(char c);
std::string dirname_of(const std::string& path);

/// True when `path` starts with any of the given repo-relative prefixes.
bool matches_any_prefix(const std::string& path,
                        const std::vector<std::string>& prefixes);

/// Collapses "." and ".." components lexically ("tools/protocheck/../lint/x"
/// -> "tools/lint/x"). Leading ".." components are preserved.
std::string lexical_normalize(const std::string& path);

// ---------------------------------------------------------------------------
// Stripped source files

/// A source file after comment/string stripping. `code` holds the stripped
/// lines (comments and string/char literal contents blanked, line structure
/// preserved); `comments` holds the comment text found on each line, which is
/// where suppressions and NOLINT markers live.
struct SourceFile {
  std::string path;
  std::vector<std::string> code;
  std::vector<std::string> comments;
  /// Quoted includes: line number -> include path as written.
  std::vector<std::pair<std::size_t, std::string>> includes;
  [[nodiscard]] bool is_header() const;
};

/// Strips `text` into a SourceFile. Handles //, /* */, string/char literals
/// and raw strings; include targets are captured before stripping.
SourceFile strip_source(std::string path, const std::string& text);

// ---------------------------------------------------------------------------
// Token stream over the stripped source

struct Tok {
  enum class Kind { kIdent, kPunct } kind;
  std::string text;
  std::size_t line;  // 1-based
};

std::vector<Tok> tokenize(const std::vector<std::string>& code);

bool tok_is(const std::vector<Tok>& t, std::size_t i, const char* text);

/// `i` points at `<`; returns the index one past the matching `>`, or
/// `t.size()` if unbalanced. Good enough for type contexts, where comparison
/// operators cannot appear.
std::size_t skip_angles(const std::vector<Tok>& t, std::size_t i);

bool bracket_is_open(const std::string& t);   // ( { [
bool bracket_is_close(const std::string& t);  // ) } ]

/// `i` points at an opening bracket; returns the index of its matching
/// closer, or `t.size()` if unbalanced.
std::size_t match_bracket(const std::vector<Tok>& t, std::size_t i);

const std::set<std::string>& cpp_keywords();

// ---------------------------------------------------------------------------
// Light function / loop parsing over the token stream
//
// Shared by the checkers that reason about function bodies (hotcheck's hot
// regions, racecheck's parallel regions). All of this is heuristic
// light-parsing — good enough for the repo's house style, not a C++ grammar.

/// Keywords that can precede `name (` without `name` being a function
/// definition.
const std::set<std::string>& non_definition_preceders();

/// One function definition found in a token stream. Ranges are token
/// indices; `params` covers the tokens strictly inside the parameter list
/// parens, `body` the tokens strictly inside the outermost braces.
struct FunctionBody {
  std::string name;
  std::size_t line = 0;
  std::size_t params_begin = 0;
  std::size_t params_end = 0;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

/// Finds definitions of `name` in `toks`. Tolerates qualified names,
/// trailing const/noexcept/ref-qualifiers, trailing return types and
/// constructor initializer lists; rejects plain calls and declarations by
/// requiring a `{` body reached through definition-shaped tokens only.
std::vector<FunctionBody> find_functions(const std::vector<Tok>& toks,
                                         const std::string& name);

/// Token range of one loop body (for/while/do) inside a function body.
struct LoopRange {
  std::size_t head = 0;  // token index of the loop keyword
  std::size_t begin = 0;
  std::size_t end = 0;
};

std::vector<LoopRange> collect_loops(const std::vector<Tok>& toks,
                                     std::size_t begin, std::size_t end);

// ---------------------------------------------------------------------------
// Suppressions

/// One well-formed suppression comment, kept per-comment (in addition to the
/// merged line->rules map) so stale-suppression reporting can point at the
/// exact comment whose rule no longer fires.
struct SuppressionComment {
  std::size_t line = 0;             ///< line carrying the comment
  std::vector<std::size_t> covers;  ///< lines whose findings it suppresses
  std::set<std::string> rules;
};

struct LineSuppressions {
  /// line -> rule ids allowed on that line.
  std::map<std::size_t, std::set<std::string>> allow;
  /// lines carrying a malformed suppression comment.
  std::vector<std::size_t> malformed;
  /// every well-formed suppression comment, in file order.
  std::vector<SuppressionComment> comments;
};

/// Collects `<marker> allow(<prefix>nnn[, ...]) reason` suppressions from a
/// file's comments. `marker` is the tool tag (e.g. "reconfnet-lint:"),
/// `rule_prefix` the three-letter rule family (e.g. "RNL"); ids must be the
/// prefix plus exactly three digits and the trailing reason is mandatory.
/// A comment alone on its line suppresses the next line that has code on it.
LineSuppressions collect_suppressions(const SourceFile& file,
                                      const std::string& marker,
                                      const std::string& rule_prefix);

/// One suppression comment whose rule no longer fires on the line it covers
/// (the `--stale-suppressions` report unit).
struct StaleSuppression {
  std::string file;
  std::size_t line = 0;  ///< line carrying the now-stale comment
  std::string rule;      ///< the rule id that no longer fires
};

/// Computes the stale subset of a file's suppression comments. `used` holds
/// the (line, rule) pairs that actually suppressed a finding during the run;
/// a comment rule is stale when none of the lines it covers used it.
std::vector<StaleSuppression> stale_suppressions(
    const std::string& path, const LineSuppressions& sup,
    const std::set<std::pair<std::size_t, std::string>>& used);

// ---------------------------------------------------------------------------
// TOML subset

/// One `key = value` entry. Values are either a scalar (quoted string with
/// the quotes removed, or a bare token such as a number) or a string array.
struct TomlEntry {
  std::string key;
  bool is_array = false;
  std::string scalar;
  std::vector<std::string> items;
  std::size_t line = 0;
};

/// One `[name]` table or `[[name]]` array-of-tables element, with its
/// entries in file order.
struct TomlSection {
  std::string name;
  bool is_array_of_tables = false;
  std::size_t line = 0;
  std::vector<TomlEntry> entries;
};

/// Parses the TOML subset shared by layers.toml and protocol.toml: comments,
/// [[section]] / [section] headers, `key = "string"`, `key = bare-token`,
/// and `key = ["a", "b"]`. Returns false and fills `error` (prefixed with
/// "line N: ") on malformed input. Keys before any section header are an
/// error; section-name validation is left to the caller.
bool parse_toml_subset(const std::string& text,
                       std::vector<TomlSection>& sections, std::string& error);

/// Parses `["a", "b"]` into items; returns false on malformed input.
bool parse_string_array(const std::string& value,
                        std::vector<std::string>& items);

// ---------------------------------------------------------------------------
// Standard informational CLI flags

/// Version stamp shared by the reconfnet checkers (reconfnet_lint,
/// reconfnet_protocheck, reconfnet_hotcheck, reconfnet_racecheck,
/// reconfnet_oraclecheck); bumped when a rule set or the shared scanning
/// layer changes shape.
inline constexpr const char* kToolsVersion = "1.3.0";

/// One rule id plus its one-line summary — the unit of --list-rules output
/// and of each tool's static rule catalogue.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Handles the informational flags every checker accepts: `--version` prints
/// `<tool> <version>`, `--list-rules` prints one `ID<TAB>summary` line per
/// rule. Returns true when `arg` was one of them (the caller exits 0).
bool handle_standard_flag(const std::string& arg, const std::string& tool_name,
                          const std::vector<RuleInfo>& rules,
                          std::ostream& out);

// ---------------------------------------------------------------------------
// SARIF export

/// Writes the findings as a single-run SARIF 2.1.0 log (the format GitHub
/// code scanning ingests), with one reportingDescriptor per distinct rule id.
/// Paths are emitted as given (repo-relative), which is what the upload
/// action expects when run from the repository root. `suppressed` findings
/// are emitted as results carrying an inSource suppression record, which
/// code-scanning displays as dismissed rather than open.
void write_sarif(std::ostream& out, const std::string& tool_name,
                 const std::string& info_uri,
                 const std::vector<Finding>& findings,
                 const std::vector<Finding>& suppressed = {});

}  // namespace reconfnet::textscan
