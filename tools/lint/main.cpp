// reconfnet_lint CLI. See lint.hpp for the rule catalogue.
//
// Usage:
//   reconfnet_lint [--root DIR] [--config FILE] [--compdb FILE]
//                  [--sarif FILE] [--stale-suppressions] [file...]
//
//   --root DIR     repository root (default: current directory). All paths
//                  are interpreted and reported relative to it.
//   --config FILE  layer map + allowlist (default: ROOT/tools/lint/layers.toml)
//   --compdb FILE  compile_commands.json; its "file" entries seed the
//                  translation-unit list (headers are discovered by walking
//                  the lint roots either way)
//   --sarif FILE   also write the findings as SARIF 2.1.0 (for the CI
//                  code-scanning upload); does not change the exit status
//   --stale-suppressions
//                  report only inline allow() comments whose rule no longer
//                  fires on the line they cover; always exits 0
//   file...        lint exactly these files instead of the whole tree
//                  (fixture files under tests/*_fixtures/ are only
//                  reachable this way)
//
// Exit status: 0 clean, 1 findings, 2 usage/configuration error.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

constexpr const char* kLintRoots[] = {"src", "bench", "tools", "examples",
                                      "tests"};

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

bool lintable_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

std::string repo_relative(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  const fs::path canonical = fs::weakly_canonical(path, ec);
  const fs::path canonical_root = fs::weakly_canonical(root, ec);
  const fs::path rel = canonical.lexically_relative(canonical_root);
  return rel.generic_string();
}

/// Pulls the "file" values out of compile_commands.json. The format is
/// stable enough (an array of objects with quoted keys) that a targeted
/// scan beats dragging in a JSON parser for a bootstrap tool.
std::vector<std::string> compdb_files(const std::string& text) {
  std::vector<std::string> files;
  std::size_t pos = 0;
  while ((pos = text.find("\"file\"", pos)) != std::string::npos) {
    pos += 6;
    const std::size_t colon = text.find(':', pos);
    if (colon == std::string::npos) break;
    const std::size_t open = text.find('"', colon);
    if (open == std::string::npos) break;
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string::npos) break;
    files.push_back(text.substr(open + 1, close - open - 1));
    pos = close + 1;
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path config_path;
  fs::path compdb_path;
  fs::path sarif_path;
  bool stale_mode = false;
  std::vector<std::string> explicit_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "reconfnet_lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = next("--root");
    } else if (arg == "--config") {
      config_path = next("--config");
    } else if (arg == "--compdb") {
      compdb_path = next("--compdb");
    } else if (arg == "--sarif") {
      sarif_path = next("--sarif");
    } else if (arg == "--stale-suppressions") {
      stale_mode = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: reconfnet_lint [--root DIR] [--config FILE] "
                   "[--compdb FILE] [--sarif FILE] [--stale-suppressions] "
                   "[--version] [--list-rules] [file...]\n";
      return 0;
    } else if (reconfnet::textscan::handle_standard_flag(
                   arg, "reconfnet_lint", reconfnet::lint::rules(),
                   std::cout)) {
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "reconfnet_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      explicit_files.push_back(arg);
    }
  }
  if (config_path.empty()) config_path = root / "tools/lint/layers.toml";

  std::string config_text;
  if (!read_file(config_path, config_text)) {
    std::cerr << "reconfnet_lint: cannot read config " << config_path << "\n";
    return 2;
  }
  reconfnet::lint::Config config;
  std::string error;
  if (!reconfnet::lint::parse_config(config_text, config, error)) {
    std::cerr << "reconfnet_lint: bad config: " << error << "\n";
    return 2;
  }

  // Assemble the file set: compile_commands.json names the translation
  // units; a walk of the lint roots picks up headers and any source not yet
  // attached to a target. Fixture files carry deliberate violations and are
  // excluded unless named explicitly.
  std::set<std::string> paths;
  if (explicit_files.empty()) {
    for (const char* dir : kLintRoots) {
      const fs::path base = root / dir;
      if (!fs::exists(base)) continue;
      for (auto it = fs::recursive_directory_iterator(base);
           it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file() || !lintable_extension(it->path()))
          continue;
        const std::string rel = repo_relative(it->path(), root);
        if (rel.find("_fixtures") != std::string::npos) continue;
        paths.insert(rel);
      }
    }
    if (!compdb_path.empty()) {
      std::string compdb_text;
      if (!read_file(compdb_path, compdb_text)) {
        std::cerr << "reconfnet_lint: cannot read compdb " << compdb_path
                  << "\n";
        return 2;
      }
      for (const std::string& file : compdb_files(compdb_text)) {
        const std::string rel = repo_relative(file, root);
        if (rel.rfind("..", 0) == 0) continue;  // outside the repo
        if (rel.find("_fixtures") != std::string::npos) continue;
        if (fs::exists(root / rel)) paths.insert(rel);
      }
    }
  } else {
    for (const std::string& file : explicit_files) {
      const fs::path p = fs::path(file).is_absolute() ? fs::path(file)
                                                      : root / file;
      if (!fs::exists(p)) {
        std::cerr << "reconfnet_lint: no such file: " << file << "\n";
        return 2;
      }
      paths.insert(repo_relative(p, root));
    }
  }
  if (paths.empty()) {
    std::cerr << "reconfnet_lint: no input files\n";
    return 2;
  }

  reconfnet::lint::Driver driver(std::move(config));
  if (!explicit_files.empty()) {
    // Partial runs still need the full path universe so quoted includes of
    // unchecked files resolve (and layer-check) instead of looking foreign.
    for (const char* dir : kLintRoots) {
      const fs::path base = root / dir;
      if (!fs::exists(base)) continue;
      for (auto it = fs::recursive_directory_iterator(base);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && lintable_extension(it->path()))
          driver.add_known_path(repo_relative(it->path(), root));
      }
    }
  }
  for (const std::string& rel : paths) {
    std::string content;
    if (!read_file(root / rel, content)) {
      std::cerr << "reconfnet_lint: cannot read " << rel << "\n";
      return 2;
    }
    driver.add_file(rel, content);
  }

  const reconfnet::lint::Driver::Result result = driver.run();
  if (stale_mode) {
    for (const auto& stale : result.stale) {
      std::cout << stale.file << ":" << stale.line << ": stale suppression "
                << "allow(" << stale.rule << ") — the rule no longer fires "
                << "on the line it covers\n";
    }
    std::cerr << "reconfnet_lint: " << result.stale.size()
              << " stale suppressions\n";
    return 0;
  }
  for (const reconfnet::lint::Finding& finding : result.findings) {
    std::cout << finding.file << ":" << finding.line << ": " << finding.rule
              << " " << finding.message << "\n";
  }
  if (!sarif_path.empty()) {
    std::ofstream sarif(sarif_path, std::ios::binary);
    if (!sarif) {
      std::cerr << "reconfnet_lint: cannot write " << sarif_path << "\n";
      return 2;
    }
    reconfnet::textscan::write_sarif(sarif, "reconfnet_lint",
                                     "tools/lint/lint.hpp", result.findings,
                                     result.suppressed_findings);
  }
  std::cerr << "reconfnet_lint: " << result.files_checked << " files, "
            << result.findings.size() << " findings (" << result.suppressed
            << " suppressed)\n";
  return result.findings.empty() ? 0 : 1;
}
