#include "textscan.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>
#include <tuple>

namespace reconfnet::textscan {

// ---------------------------------------------------------------------------
// Findings

void sort_and_dedupe(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return std::tie(a.file, a.line, a.rule) ==
                                      std::tie(b.file, b.line, b.rule);
                             }),
                 findings.end());
}

// ---------------------------------------------------------------------------
// Small string helpers

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

bool matches_any_prefix(const std::string& path,
                        const std::vector<std::string>& prefixes) {
  return std::any_of(prefixes.begin(), prefixes.end(),
                     [&path](const std::string& prefix) {
                       return starts_with(path, prefix.c_str());
                     });
}

std::string lexical_normalize(const std::string& path) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= path.size()) {
    const std::size_t slash = path.find('/', begin);
    const std::size_t end = slash == std::string::npos ? path.size() : slash;
    const std::string part = path.substr(begin, end - begin);
    if (part == ".." && !parts.empty() && parts.back() != "..") {
      parts.pop_back();
    } else if (!part.empty() && part != ".") {
      parts.push_back(part);
    }
    if (slash == std::string::npos) break;
    begin = slash + 1;
  }
  std::string out;
  for (const std::string& part : parts) {
    if (!out.empty()) out += '/';
    out += part;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token stream

std::vector<Tok> tokenize(const std::vector<std::string>& code) {
  std::vector<Tok> toks;
  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& s = code[li];
    std::size_t i = 0;
    while (i < s.size()) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (is_ident_start(c)) {
        std::size_t j = i + 1;
        while (j < s.size() && is_ident_char(s[j])) ++j;
        toks.push_back({Tok::Kind::kIdent, s.substr(i, j - i), li + 1});
        i = j;
        continue;
      }
      // Multi-char punctuation we must not split: `::` (so a lone `:` means
      // range-for) and `->` (so a lone `>` means template close).
      if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
        toks.push_back({Tok::Kind::kPunct, "::", li + 1});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < s.size() && s[i + 1] == '>') {
        toks.push_back({Tok::Kind::kPunct, "->", li + 1});
        i += 2;
        continue;
      }
      toks.push_back({Tok::Kind::kPunct, std::string(1, c), li + 1});
      ++i;
    }
  }
  return toks;
}

bool tok_is(const std::vector<Tok>& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}

std::size_t skip_angles(const std::vector<Tok>& t, std::size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i].text == "<") ++depth;
    if (t[i].text == ">" && --depth == 0) return i + 1;
    if (t[i].text == ";") break;  // statement ended: malformed, bail
  }
  return t.size();
}

bool bracket_is_open(const std::string& t) {
  return t == "(" || t == "{" || t == "[";
}
bool bracket_is_close(const std::string& t) {
  return t == ")" || t == "}" || t == "]";
}

std::size_t match_bracket(const std::vector<Tok>& t, std::size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (bracket_is_open(t[i].text)) ++depth;
    if (bracket_is_close(t[i].text) && --depth == 0) return i;
  }
  return t.size();
}

const std::set<std::string>& cpp_keywords() {
  static const std::set<std::string> kKeywords = {
      "alignas",  "alignof",  "auto",      "bool",     "break",    "case",
      "catch",    "char",     "class",     "const",    "constexpr","continue",
      "decltype", "default",  "delete",    "do",       "double",   "else",
      "enum",     "explicit", "extern",    "false",    "float",    "for",
      "friend",   "if",       "inline",    "int",      "long",     "mutable",
      "namespace","new",      "noexcept",  "nullptr",  "operator", "private",
      "protected","public",   "return",    "short",    "signed",   "sizeof",
      "static",   "struct",   "switch",    "template", "this",     "throw",
      "true",     "try",      "typedef",   "typename", "union",    "unsigned",
      "using",    "virtual",  "void",      "volatile", "while"};
  return kKeywords;
}

// ---------------------------------------------------------------------------
// Light function / loop parsing

const std::set<std::string>& non_definition_preceders() {
  static const std::set<std::string> kNot = {
      "if",     "while", "for",   "switch", "return", "new",
      "delete", "throw", "else",  "do",     "case",   "sizeof",
      "goto",   "co_return", "co_await", "co_yield"};
  return kNot;
}

std::vector<FunctionBody> find_functions(const std::vector<Tok>& toks,
                                         const std::string& name) {
  std::vector<FunctionBody> out;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Tok::Kind::kIdent || toks[i].text != name) continue;
    if (!tok_is(toks, i + 1, "(")) continue;
    const Tok& prev = toks[i - 1];
    bool plausible = false;
    if (prev.kind == Tok::Kind::kIdent) {
      plausible = non_definition_preceders().count(prev.text) == 0;
    } else {
      plausible = prev.text == "::" || prev.text == ">" || prev.text == "*" ||
                  prev.text == "&" || prev.text == "~";
    }
    if (!plausible) continue;

    const std::size_t open = i + 1;
    const std::size_t close = match_bracket(toks, open);
    if (close >= toks.size()) continue;

    // Walk from the parameter list to a `{` body through tokens only a
    // definition can carry; anything else means call site or declaration.
    std::size_t j = close + 1;
    bool definition = false;
    while (j < toks.size()) {
      const std::string& t = toks[j].text;
      if (t == "{") {
        definition = true;
        break;
      }
      if (t == "const" || t == "noexcept" || t == "override" || t == "final" ||
          t == "mutable" || t == "&" || t == "&&") {
        ++j;
        continue;
      }
      if (t == "(") {  // noexcept(...) operand
        j = match_bracket(toks, j);
        if (j >= toks.size()) break;
        ++j;
        continue;
      }
      if (t == "->") {  // trailing return type
        ++j;
        while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") {
          if (toks[j].text == "<") {
            j = skip_angles(toks, j);
            continue;
          }
          ++j;
        }
        continue;
      }
      if (t == ":") {  // constructor initializer list
        ++j;
        while (j < toks.size()) {
          const std::string& u = toks[j].text;
          if (u == "(" || u == "[") {
            j = match_bracket(toks, j);
            if (j >= toks.size()) break;
            ++j;
            continue;
          }
          if (u == "<") {
            j = skip_angles(toks, j);
            continue;
          }
          if (u == "{") {
            // `member{...}` init follows an identifier or `>`; the body
            // brace follows `)`/`}`/`,` instead.
            if (toks[j - 1].kind == Tok::Kind::kIdent ||
                toks[j - 1].text == ">") {
              j = match_bracket(toks, j);
              if (j >= toks.size()) break;
              ++j;
              continue;
            }
            break;
          }
          if (u == ";" || u == "}") break;
          ++j;
        }
        continue;
      }
      break;
    }
    if (!definition || j >= toks.size()) continue;
    const std::size_t body_close = match_bracket(toks, j);
    if (body_close >= toks.size()) continue;
    out.push_back({name, toks[i].line, open + 1, close, j + 1, body_close});
    i = close;  // resume after the parameter list
  }
  return out;
}

std::vector<LoopRange> collect_loops(const std::vector<Tok>& toks,
                                     std::size_t begin, std::size_t end) {
  std::vector<LoopRange> loops;
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != Tok::Kind::kIdent) continue;
    if (toks[i].text == "do") {
      if (tok_is(toks, i + 1, "{")) {
        const std::size_t close = match_bracket(toks, i + 1);
        if (close < end) loops.push_back({i, i + 2, close});
      }
      continue;
    }
    if (toks[i].text != "for" && toks[i].text != "while") continue;
    if (!tok_is(toks, i + 1, "(")) continue;
    const std::size_t head_close = match_bracket(toks, i + 1);
    if (head_close >= end) continue;
    std::size_t k = head_close + 1;
    if (tok_is(toks, k, "{")) {
      const std::size_t close = match_bracket(toks, k);
      if (close < end) loops.push_back({i, k + 1, close});
    } else if (tok_is(toks, k, ";")) {
      // do-while trailer or empty loop: nothing to scan.
    } else {
      // Single-statement body: scan to the terminating ';' at depth 0.
      std::size_t j = k;
      int depth = 0;
      while (j < end) {
        if (bracket_is_open(toks[j].text)) ++depth;
        if (bracket_is_close(toks[j].text)) --depth;
        if (depth == 0 && toks[j].text == ";") break;
        ++j;
      }
      if (j < end) loops.push_back({i, k, j});
    }
  }
  return loops;
}

// ---------------------------------------------------------------------------
// Source stripping

bool SourceFile::is_header() const {
  return path.size() > 4 ? (path.ends_with(".hpp") || path.ends_with(".h"))
                         : path.ends_with(".h");
}

SourceFile strip_source(std::string path, const std::string& text) {
  SourceFile out;
  out.path = std::move(path);

  // Capture quoted includes from the raw text first; stripping blanks string
  // contents, which is exactly where the include target lives.
  {
    std::istringstream in(text);
    std::string raw;
    std::size_t lineno = 0;
    bool in_block_comment = false;
    while (std::getline(in, raw)) {
      ++lineno;
      if (in_block_comment) {
        const std::size_t close = raw.find("*/");
        if (close == std::string::npos) continue;
        in_block_comment = false;
        raw = raw.substr(close + 2);
      }
      const std::string line = trim(raw);
      if (starts_with(line, "#include")) {
        const std::size_t open = line.find('"');
        if (open != std::string::npos) {
          const std::size_t close = line.find('"', open + 1);
          if (close != std::string::npos)
            out.includes.emplace_back(lineno,
                                      line.substr(open + 1, close - open - 1));
        }
      }
      // Track block comments that open on this line and stay open.
      std::size_t pos = 0;
      while ((pos = raw.find("/*", pos)) != std::string::npos) {
        const std::size_t line_comment = raw.find("//");
        if (line_comment != std::string::npos && line_comment < pos) break;
        const std::size_t close = raw.find("*/", pos + 2);
        if (close == std::string::npos) {
          in_block_comment = true;
          break;
        }
        pos = close + 2;
      }
    }
  }

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  } state = State::kCode;
  std::string code_line;
  std::string comment_line;
  std::string raw_delim;  // for raw strings: the `)delim"` terminator
  const std::size_t n = text.size();
  for (std::size_t i = 0; i <= n; ++i) {
    const char c = i < n ? text[i] : '\n';
    if (c == '\n') {
      out.code.push_back(code_line);
      out.comments.push_back(comment_line);
      code_line.clear();
      comment_line.clear();
      if (state == State::kLineComment) state = State::kCode;
      if (i == n) break;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
                   (i == 0 || !is_ident_char(text[i - 1]))) {
          std::size_t j = i + 2;
          while (j < n && text[j] != '(' && text[j] != '\n') ++j;
          raw_delim = ")" + text.substr(i + 2, j - i - 2) + "\"";
          code_line += "\"\"";
          state = State::kRawString;
          i = j;  // position at '('
        } else if (c == '"') {
          code_line += '"';
          state = State::kString;
        } else if (c == '\'') {
          code_line += '\'';
          state = State::kChar;
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          state = State::kCode;
          ++i;
        } else {
          comment_line += c;
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n) {
          ++i;
        } else if (c == '"') {
          code_line += '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          ++i;
        } else if (c == '\'') {
          code_line += '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions

namespace {

/// Parses `<marker> allow(XYZnnn[, XYZmmm]) reason` out of comment text.
/// Returns false when the marker is present but malformed.
bool parse_allow_comment(const std::string& comment, const std::string& marker,
                         const std::string& rule_prefix,
                         std::set<std::string>& rules) {
  const std::size_t at = comment.find(marker);
  std::size_t i = at + marker.size();
  while (i < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[i])) != 0)
    ++i;
  if (comment.compare(i, 6, "allow(") != 0) return false;
  i += 6;
  const std::size_t close = comment.find(')', i);
  if (close == std::string::npos) return false;
  std::string inside = comment.substr(i, close - i);
  std::replace(inside.begin(), inside.end(), ',', ' ');
  std::istringstream ids(inside);
  std::string id;
  while (ids >> id) {
    if (id.size() != rule_prefix.size() + 3 ||
        id.compare(0, rule_prefix.size(), rule_prefix) != 0 ||
        !std::all_of(id.begin() +
                         static_cast<std::ptrdiff_t>(rule_prefix.size()),
                     id.end(), [](char c) {
                       return std::isdigit(static_cast<unsigned char>(c)) != 0;
                     })) {
      return false;
    }
    rules.insert(id);
  }
  if (rules.empty()) return false;
  // A suppression without a reason is itself a finding: the reason is what
  // makes the exemption auditable.
  const std::string reason = trim(comment.substr(close + 1));
  return !reason.empty();
}

}  // namespace

LineSuppressions collect_suppressions(const SourceFile& file,
                                      const std::string& marker,
                                      const std::string& rule_prefix) {
  LineSuppressions out;
  for (std::size_t li = 0; li < file.comments.size(); ++li) {
    const std::string& comment = file.comments[li];
    if (comment.find(marker) == std::string::npos) continue;
    std::set<std::string> rules;
    const std::size_t line = li + 1;
    if (!parse_allow_comment(comment, marker, rule_prefix, rules)) {
      out.malformed.push_back(line);
      continue;
    }
    out.allow[line].insert(rules.begin(), rules.end());
    SuppressionComment record;
    record.line = line;
    record.covers.push_back(line);
    record.rules = rules;
    // A comment-only line suppresses the next line that has code on it.
    if (trim(file.code[li]).empty()) {
      std::size_t target = li + 1;
      while (target < file.code.size() && trim(file.code[target]).empty())
        ++target;
      if (target < file.code.size()) {
        out.allow[target + 1].insert(rules.begin(), rules.end());
        record.covers.push_back(target + 1);
      }
    }
    out.comments.push_back(std::move(record));
  }
  return out;
}

std::vector<StaleSuppression> stale_suppressions(
    const std::string& path, const LineSuppressions& sup,
    const std::set<std::pair<std::size_t, std::string>>& used) {
  std::vector<StaleSuppression> out;
  for (const SuppressionComment& comment : sup.comments) {
    for (const std::string& rule : comment.rules) {
      bool hit = false;
      for (const std::size_t line : comment.covers) {
        if (used.count({line, rule}) != 0) {
          hit = true;
          break;
        }
      }
      if (!hit) out.push_back({path, comment.line, rule});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// TOML subset

bool parse_string_array(const std::string& value,
                        std::vector<std::string>& items) {
  const std::string inner = trim(value);
  if (inner.size() < 2 || inner.front() != '[' || inner.back() != ']')
    return false;
  std::size_t i = 1;
  const std::size_t end = inner.size() - 1;
  while (i < end) {
    while (i < end && (std::isspace(static_cast<unsigned char>(inner[i])) !=
                           0 ||
                       inner[i] == ','))
      ++i;
    if (i >= end) break;
    if (inner[i] != '"') return false;
    const std::size_t close = inner.find('"', i + 1);
    if (close == std::string::npos || close > end) return false;
    items.push_back(inner.substr(i + 1, close - i - 1));
    i = close + 1;
  }
  return true;
}

bool parse_toml_subset(const std::string& text,
                       std::vector<TomlSection>& sections,
                       std::string& error) {
  sections.clear();
  std::istringstream in(text);
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    // Strip comments, but not inside quoted strings (a '#' may legitimately
    // appear inside a value; none of our configs need that yet, so a plain
    // scan that respects quotes is enough).
    std::string stripped;
    bool in_string = false;
    for (const char c : raw) {
      if (c == '"') in_string = !in_string;
      if (c == '#' && !in_string) break;
      stripped += c;
    }
    const std::string line = trim(stripped);
    if (line.empty()) continue;
    if (starts_with(line, "[[") && line.ends_with("]]")) {
      const std::string name = trim(line.substr(2, line.size() - 4));
      if (name.empty()) {
        error = "line " + std::to_string(lineno) + ": empty section name";
        return false;
      }
      sections.push_back({name, true, lineno, {}});
      continue;
    }
    if (line.front() == '[') {
      if (!line.ends_with("]") || line.size() < 3) {
        error = "line " + std::to_string(lineno) + ": malformed section header";
        return false;
      }
      const std::string name = trim(line.substr(1, line.size() - 2));
      sections.push_back({name, false, lineno, {}});
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      error = "line " + std::to_string(lineno) + ": expected key = value";
      return false;
    }
    if (sections.empty()) {
      error = "line " + std::to_string(lineno) + ": key outside any section";
      return false;
    }
    TomlEntry entry;
    entry.key = trim(line.substr(0, eq));
    entry.line = lineno;
    const std::string value = trim(line.substr(eq + 1));
    if (entry.key.empty() || value.empty()) {
      error = "line " + std::to_string(lineno) + ": expected key = value";
      return false;
    }
    if (value.front() == '[') {
      entry.is_array = true;
      if (!parse_string_array(value, entry.items)) {
        error = "line " + std::to_string(lineno) + ": bad string array";
        return false;
      }
    } else if (value.front() == '"') {
      if (value.size() < 2 || value.back() != '"') {
        error = "line " + std::to_string(lineno) + ": unterminated string";
        return false;
      }
      entry.scalar = value.substr(1, value.size() - 2);
    } else {
      entry.scalar = value;  // bare token (number, bool)
    }
    sections.back().entries.push_back(std::move(entry));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Standard informational CLI flags

bool handle_standard_flag(const std::string& arg, const std::string& tool_name,
                          const std::vector<RuleInfo>& rules,
                          std::ostream& out) {
  if (arg == "--version") {
    out << tool_name << " " << kToolsVersion << "\n";
    return true;
  }
  if (arg == "--list-rules") {
    for (const RuleInfo& rule : rules) {
      out << rule.id << "\t" << rule.summary << "\n";
    }
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// SARIF export

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

namespace {

/// Emits one SARIF result object. `suppressed` results carry an inSource
/// suppression record so code scanning shows them as dismissed.
void write_sarif_result(std::ostream& out, const Finding& finding,
                        bool suppressed, bool first) {
  out << (first ? "\n" : ",\n")
      << "        {\n"
      << "          \"ruleId\": \"" << json_escape(finding.rule) << "\",\n"
      << "          \"level\": \"error\",\n"
      << "          \"message\": {\"text\": \"" << json_escape(finding.message)
      << "\"},\n";
  if (suppressed) {
    out << "          \"suppressions\": [{\"kind\": \"inSource\"}],\n";
  }
  out << "          \"locations\": [\n"
      << "            {\n"
      << "              \"physicalLocation\": {\n"
      << "                \"artifactLocation\": {\"uri\": \""
      << json_escape(finding.file) << "\"},\n"
      << "                \"region\": {\"startLine\": "
      << (finding.line == 0 ? 1 : finding.line) << "}\n"
      << "              }\n"
      << "            }\n"
      << "          ]\n"
      << "        }";
}

}  // namespace

void write_sarif(std::ostream& out, const std::string& tool_name,
                 const std::string& info_uri,
                 const std::vector<Finding>& findings,
                 const std::vector<Finding>& suppressed) {
  // Distinct rule ids, sorted, each becomes a reportingDescriptor.
  std::set<std::string> rules;
  for (const Finding& finding : findings) rules.insert(finding.rule);
  for (const Finding& finding : suppressed) rules.insert(finding.rule);

  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"" << json_escape(tool_name) << "\",\n"
      << "          \"informationUri\": \"" << json_escape(info_uri)
      << "\",\n"
      << "          \"rules\": [";
  bool first = true;
  for (const std::string& rule : rules) {
    out << (first ? "\n" : ",\n")
        << "            {\"id\": \"" << json_escape(rule) << "\"}";
    first = false;
  }
  out << (rules.empty() ? "]\n" : "\n          ]\n")
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  first = true;
  for (const Finding& finding : findings) {
    write_sarif_result(out, finding, /*suppressed=*/false, first);
    first = false;
  }
  for (const Finding& finding : suppressed) {
    write_sarif_result(out, finding, /*suppressed=*/true, first);
    first = false;
  }
  out << (first ? "]\n" : "\n      ]\n")
      << "    }\n"
      << "  ]\n"
      << "}\n";
}

}  // namespace reconfnet::textscan
