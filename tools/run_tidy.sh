#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy at the repo root) over the first-party
# sources and fail non-zero on any diagnostic.
#
# Usage:
#   tools/run_tidy.sh [build-dir] [file...]
#
#   build-dir  directory containing compile_commands.json (configured on the
#              fly into build/tidy-compdb if absent; default: first existing
#              of build/tidy, build/default, build)
#   file...    restrict the run to these sources (default: all *.cpp under
#              src/ bench/ tools/ examples/)
#
# Environment:
#   CLANG_TIDY       clang-tidy binary to use (default: clang-tidy, with
#                    versioned fallbacks clang-tidy-{19..14})
#   RUN_TIDY_STRICT  1 = treat a missing clang-tidy as a failure (CI mode);
#                    default 0 = skip with a notice so machines without the
#                    clang toolchain (e.g. the gcc-only dev container) still
#                    pass the local gate.
#   TIDY_JOBS        parallel clang-tidy processes (default: nproc)
set -euo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

find_clang_tidy() {
  if [[ -n "${CLANG_TIDY:-}" ]]; then
    command -v "${CLANG_TIDY}" && return 0
  fi
  local candidate
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    command -v "${candidate}" && return 0
  done
  return 1
}

if ! tidy_bin="$(find_clang_tidy)"; then
  if [[ "${RUN_TIDY_STRICT:-0}" == "1" ]]; then
    echo "run_tidy: clang-tidy not found and RUN_TIDY_STRICT=1" >&2
    exit 2
  fi
  echo "run_tidy: clang-tidy not found; skipping lint (RUN_TIDY_STRICT=1 to fail)" >&2
  exit 0
fi

build_dir="${1:-}"
if [[ $# -gt 0 ]]; then
  shift
fi
if [[ -z "${build_dir}" ]]; then
  for candidate in build/tidy build/default build; do
    if [[ -f "${candidate}/compile_commands.json" ]]; then
      build_dir="${candidate}"
      break
    fi
  done
fi
if [[ -z "${build_dir}" || ! -f "${build_dir}/compile_commands.json" ]]; then
  build_dir="build/tidy-compdb"
  echo "run_tidy: configuring ${build_dir} for compile_commands.json" >&2
  cmake -S . -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

declare -a files
if [[ $# -gt 0 ]]; then
  # Explicit file arguments. Headers have no compile command, so a header
  # argument is mapped to every translation unit that includes it; the
  # HeaderFilterRegex in .clang-tidy then surfaces the header's own
  # diagnostics from those TUs.
  declare -a expanded=()
  for file in "$@"; do
    case "${file}" in
      *.hpp|*.h)
        rel="${file#./}"
        rel="${rel#src/}"
        mapfile -t tus < <(grep -rlF --include='*.cpp' \
          "\"${rel}\"" src bench tools examples | sort)
        if [[ ${#tus[@]} -eq 0 ]]; then
          echo "run_tidy: no TU includes ${file}; nothing to check for it" >&2
        else
          expanded+=("${tus[@]}")
        fi
        ;;
      *)
        expanded+=("${file}")
        ;;
    esac
  done
  if [[ ${#expanded[@]} -eq 0 ]]; then
    echo "run_tidy: no input files" >&2
    exit 2
  fi
  mapfile -t files < <(printf '%s\n' "${expanded[@]}" | sort -u)
else
  # Lint every first-party translation unit. Tests are excluded: gtest's
  # TEST() macros expand to identifiers the naming check cannot see through.
  mapfile -t files < <(find src bench tools examples -name '*.cpp' | sort)
fi
if [[ ${#files[@]} -eq 0 ]]; then
  echo "run_tidy: no input files" >&2
  exit 2
fi

jobs="${TIDY_JOBS:-$(nproc)}"
echo "run_tidy: ${tidy_bin} over ${#files[@]} files (-p ${build_dir}, ${jobs} jobs)" >&2

# xargs propagates a non-zero status (123) if any clang-tidy invocation finds
# a diagnostic; --warnings-as-errors promotes every warning to that status.
log="$(mktemp)"
trap 'rm -f "${log}"' EXIT
status=0
printf '%s\0' "${files[@]}" | xargs -0 -n 4 -P "${jobs}" \
  "${tidy_bin}" -p "${build_dir}" --quiet --warnings-as-errors='*' \
  > "${log}" 2>&1 || status=$?
cat "${log}"
diagnostics="$(grep -cE '(warning|error):' "${log}")" || diagnostics=0
echo "run_tidy: ${#files[@]} files checked, ${diagnostics} diagnostics" >&2
exit "${status}"
