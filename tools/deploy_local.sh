#!/usr/bin/env bash
# deploy_local.sh — launch a live reconfnet deployment on loopback UDP and
# gate it against the in-process reference (DESIGN.md §15, experiment V2).
#
#   tools/deploy_local.sh [--nodes 64] [--epochs 3] [--dim 3] [--plan none]
#                         [--round-us 250000] [--base-port 47100]
#                         [--bin PATH] [--out-dir DIR] [--timeout 300]
#                         [--baseline PATH] [--tolerance 0.15] [--no-gate]
#
# One reconfnet_node process per node id, no coordinator: every process
# derives the same initial table from (--dim, --nodes, table seed) and the
# same fault schedule from (--plan, fault salt). Scripted crash-stops are
# real process deaths (exit code 2); a watchdog SIGKILLs anything still
# alive after --timeout seconds, so a wedged deployment fails loudly instead
# of hanging CI. Per-node JSON metrics are harvested into a bench-v1 file
# with the exact (group, metric) labels bench_transport emits, then
# benchdiff gates the live numbers against the committed baseline.
#
# Exit codes: 0 converged (and benchdiff passed, unless --no-gate),
#             1 a node misbehaved / metrics missing / benchdiff regression,
#             2 usage or environment error.
set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
NODES=64
EPOCHS=3
DIM=3
PLAN="none"
ROUND_US=250000
BASE_PORT=47100
BIN=""
OUT_DIR=""
TIMEOUT_S=300
BASELINE="$REPO_ROOT/bench/baselines/BENCH_V2_transport.json"
TOLERANCE=0.15
GATE=1

usage() { sed -n '2,20p' "$0"; exit 2; }

while [ $# -gt 0 ]; do
  case "$1" in
    --nodes) NODES="$2"; shift 2 ;;
    --epochs) EPOCHS="$2"; shift 2 ;;
    --dim) DIM="$2"; shift 2 ;;
    --plan) PLAN="$2"; shift 2 ;;
    --round-us) ROUND_US="$2"; shift 2 ;;
    --base-port) BASE_PORT="$2"; shift 2 ;;
    --bin) BIN="$2"; shift 2 ;;
    --out-dir) OUT_DIR="$2"; shift 2 ;;
    --timeout) TIMEOUT_S="$2"; shift 2 ;;
    --baseline) BASELINE="$2"; shift 2 ;;
    --tolerance) TOLERANCE="$2"; shift 2 ;;
    --no-gate) GATE=0; shift ;;
    -h|--help) usage ;;
    *) echo "deploy_local.sh: unknown flag $1" >&2; usage ;;
  esac
done

if [ -z "$BIN" ]; then
  for candidate in "$REPO_ROOT/build/tools/reconfnet_node" \
                   "$REPO_ROOT/build/reconfnet_node"; do
    [ -x "$candidate" ] && BIN="$candidate" && break
  done
fi
if [ -z "$BIN" ] || [ ! -x "$BIN" ]; then
  echo "deploy_local.sh: reconfnet_node binary not found (build first," \
       "or pass --bin)" >&2
  exit 2
fi
command -v python3 >/dev/null || { echo "deploy_local.sh: python3 required" >&2; exit 2; }

if [ -z "$OUT_DIR" ]; then
  OUT_DIR="$(mktemp -d /tmp/reconfnet-deploy.XXXXXX)"
fi
mkdir -p "$OUT_DIR"

echo "deploy_local: $NODES nodes, $EPOCHS epochs, plan=$PLAN," \
     "round budget ${ROUND_US}us, metrics in $OUT_DIR"

# --- launch ---------------------------------------------------------------
PIDS=()
for id in $(seq 0 $((NODES - 1))); do
  "$BIN" --self "$id" --nodes "$NODES" --dim "$DIM" --epochs "$EPOCHS" \
         --plan "$PLAN" --base-port "$BASE_PORT" --round-us "$ROUND_US" \
         --smoke --metrics-out "$OUT_DIR/node$id.json" \
         >"$OUT_DIR/node$id.log" 2>&1 &
  PIDS+=($!)
done

# --- watchdog: SIGKILL backstop so a wedged node cannot hang the run ------
DEADLINE=$(( $(date +%s) + TIMEOUT_S ))
KILLED=0
while :; do
  alive=0
  for pid in "${PIDS[@]}"; do
    kill -0 "$pid" 2>/dev/null && alive=$((alive + 1))
  done
  [ "$alive" -eq 0 ] && break
  if [ "$(date +%s)" -ge "$DEADLINE" ]; then
    echo "deploy_local: TIMEOUT after ${TIMEOUT_S}s, SIGKILLing $alive" \
         "remaining process(es)" >&2
    for pid in "${PIDS[@]}"; do
      kill -9 "$pid" 2>/dev/null && KILLED=$((KILLED + 1))
    done
    break
  fi
  sleep 1
done

EXITS=()
for pid in "${PIDS[@]}"; do
  wait "$pid"
  EXITS+=($?)
done

# --- harvest + gate -------------------------------------------------------
LIVE_JSON="$OUT_DIR/live_bench.json"
python3 - "$OUT_DIR" "$NODES" "$DIM" "$EPOCHS" "$PLAN" "$KILLED" \
    "$LIVE_JSON" "${EXITS[@]}" <<'PYEOF'
import json, os, sys

out_dir, nodes, dim, epochs, plan, killed, live_json = sys.argv[1:8]
nodes, dim, epochs, killed = int(nodes), int(dim), int(epochs), int(killed)
exits = [int(x) for x in sys.argv[8:]]
canonical = "+".join(sorted(p for p in plan.split(",") if p and p != "none"))
canonical = canonical or "none"

bad = []
if killed:
    bad.append(f"{killed} process(es) needed the SIGKILL backstop")

per_node = []
for i in range(nodes):
    path = os.path.join(out_dir, f"node{i}.json")
    if not os.path.exists(path):
        bad.append(f"node {i}: no metrics file (exit {exits[i]})")
        continue
    with open(path) as fh:
        per_node.append(json.load(fh))

crashed = [d for d in per_node if d["exit_code"] == 2]
live = [d for d in per_node if d["exit_code"] != 2]
for d in live:
    n = d["node"]
    if d["exit_code"] != 0:
        bad.append(f"node {n}: exit code {d['exit_code']}")
    if not d["finished"]:
        bad.append(f"node {n}: protocol did not finish")
    if d["protocol"]["epochs_completed"] != epochs:
        bad.append(f"node {n}: completed "
                   f"{d['protocol']['epochs_completed']}/{epochs} epochs")
    if not d["protocol"]["lookup_ok"]:
        bad.append(f"node {n}: DHT smoke lookup failed")

def mean(vals):
    vals = list(vals)
    return sum(vals) / len(vals) if vals else 0.0

ok = 0.0 if bad else 1.0
rounds = max((d["protocol"]["rounds_total"] for d in live), default=0)
series = {
    "ok": ok,
    "rounds": float(rounds),
    "epochs_completed_mean":
        mean(d["protocol"]["epochs_completed"] for d in live),
    "fallbacks_mean": mean(d["protocol"]["fallbacks"] for d in live),
    "bits_per_node_per_epoch":
        mean(d["protocol"]["bits_sent"] / epochs for d in live),
    "lookup_success_rate":
        mean(1.0 if d["protocol"]["lookup_ok"] else 0.0 for d in live),
    "finished_frac": mean(1.0 if d["finished"] else 0.0 for d in live),
}
group = f"n={nodes} d={dim} plan={canonical}"
doc = {
    "schema": "reconfnet-bench-v1",
    "experiment": "V2_transport_live",
    "title": "live UDP deployment harvested by tools/deploy_local.sh",
    "metrics": [
        {"group": group, "name": name, "values": [value]}
        for name, value in series.items()
    ],
}
with open(live_json, "w") as fh:
    json.dump(doc, fh, indent=1)
    fh.write("\n")

print(f"deploy_local: {len(live)} live, {len(crashed)} crashed per plan, "
      f"rounds={rounds}, epochs={series['epochs_completed_mean']:.2f}, "
      f"fallbacks={series['fallbacks_mean']:.2f}, "
      f"kbits/node/epoch={series['bits_per_node_per_epoch'] / 1000.0:.1f}, "
      f"lookups={series['lookup_success_rate']:.2f}")
for line in bad[:20]:
    print(f"deploy_local: FAIL {line}")
if len(bad) > 20:
    print(f"deploy_local: ... and {len(bad) - 20} more failures")
sys.exit(1 if bad else 0)
PYEOF
HARVEST=$?

if [ "$HARVEST" -ne 0 ]; then
  echo "deploy_local: deployment FAILED (details above, logs in $OUT_DIR)" >&2
  exit 1
fi

if [ "$GATE" -eq 1 ]; then
  echo "deploy_local: benchdiff vs $(basename "$BASELINE")" \
       "(tolerance $TOLERANCE)"
  python3 "$REPO_ROOT/tools/benchdiff.py" "$BASELINE" "$LIVE_JSON" \
      --tolerance "$TOLERANCE" --fail-on-regression || {
    echo "deploy_local: live metrics regressed vs the in-process" \
         "reference" >&2
    exit 1
  }
fi

echo "deploy_local: OK"
exit 0
