#!/usr/bin/env bash
# Run reconfnet_hotcheck (tools/hotcheck/) — the hot-path allocation/copy
# gate — and fail non-zero on any unsuppressed finding. The checker reads the
# hot-path inventory and allocation budgets from tools/hotcheck/hotpaths.toml
# and flags per-round heap allocation, by-value container parameters, map
# lookups on the message path, push loops without a prior reserve, and string
# formatting inside the declared hot functions (DESIGN.md §11). The budgets in
# the same spec are enforced dynamically by tests/allocbudget_test.cpp. Like
# run_lint.sh it is zero-dependency: with no build tree it is
# bootstrap-compiled on the spot via tools/bootstrap_tool.sh.
#
# Usage:
#   tools/run_hotcheck.sh [build-dir] [file...]
#
#   build-dir  build tree to take the reconfnet_hotcheck binary from
#              (default: first existing of build/default, build, build/tidy;
#              bootstrap-compiled when none is configured)
#   file...    restrict the run to these sources (partial mode: whole-spec
#              rules such as the missing-hot-file check are skipped)
#
# Environment:
#   HOTCHECK_LOG    also write the findings to this file (CI uploads it as an
#                   artifact); written even when the run is clean.
#   HOTCHECK_SARIF  also write a SARIF 2.1.0 log to this file (for the CI
#                   code-scanning upload).
#   CXX             compiler for the bootstrap build (default: c++)
set -euo pipefail

repo_root="$(cd -- "$(dirname -- "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

build_dir="${1:-}"
if [[ $# -gt 0 ]]; then
  shift
fi
if [[ -z "${build_dir}" ]]; then
  for candidate in build/default build build/tidy; do
    if [[ -f "${candidate}/CMakeCache.txt" ]]; then
      build_dir="${candidate}"
      break
    fi
  done
fi

check_bin="$(tools/bootstrap_tool.sh reconfnet_hotcheck tools/hotcheck \
  "${build_dir}" \
  tools/lint/textscan.hpp tools/lint/textscan.cpp \
  tools/hotcheck/hotcheck.hpp tools/hotcheck/hotcheck.cpp \
  tools/hotcheck/main.cpp)"

echo "reconfnet_hotcheck $("${check_bin}" --version | awk '{print $2}'): \
$("${check_bin}" --list-rules | wc -l) rules active" >&2

declare -a args=(--root . --spec tools/hotcheck/hotpaths.toml)
if [[ -n "${HOTCHECK_SARIF:-}" ]]; then
  args+=(--sarif "${HOTCHECK_SARIF}")
fi
if [[ $# -gt 0 ]]; then
  args+=("$@")
fi

status=0
if [[ -n "${HOTCHECK_LOG:-}" ]]; then
  "${check_bin}" "${args[@]}" 2>&1 | tee "${HOTCHECK_LOG}" || status=$?
else
  "${check_bin}" "${args[@]}" || status=$?
fi
exit "${status}"
