#include "hotcheck.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace reconfnet::hotcheck {

using textscan::FunctionBody;
using textscan::LoopRange;
using textscan::Tok;
using textscan::bracket_is_close;
using textscan::bracket_is_open;
using textscan::collect_loops;
using textscan::find_functions;
using textscan::match_bracket;
using textscan::skip_angles;
using textscan::tok_is;
using textscan::tokenize;

// ---------------------------------------------------------------------------
// Rule catalogue

const std::vector<textscan::RuleInfo>& rules() {
  static const std::vector<textscan::RuleInfo> kRules = {
      {"RNH401", "heap allocation in a hot region"},
      {"RNH402", "hot-function parameter takes a container by value"},
      {"RNH403", "std::map/unordered_map operation in a hot function"},
      {"RNH404", "push loop without a prior reserve/resize"},
      {"RNH405", "string formatting in a hot function"},
      {"RNH410", "hotpaths.toml drift (missing file or function)"},
      {"RNH490", "malformed reconfnet-hotcheck suppression"},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// Spec parsing

namespace {

bool is_integer(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

bool fill_hotpath(const textscan::TomlSection& section, HotPathSpec& hp,
                  std::string& error) {
  hp.line = section.line;
  for (const auto& entry : section.entries) {
    const bool want_array = entry.key == "functions";
    if (want_array != entry.is_array) {
      error = "line " + std::to_string(entry.line) + ": hotpath key " +
              entry.key + (want_array ? " needs an array" : " needs a string");
      return false;
    }
    if (entry.key == "name") {
      hp.name = entry.scalar;
    } else if (entry.key == "file") {
      hp.file = entry.scalar;
    } else if (entry.key == "functions") {
      hp.functions = entry.items;
    } else if (entry.key == "strict") {
      if (entry.scalar != "true" && entry.scalar != "false") {
        error = "line " + std::to_string(entry.line) +
                ": hotpath strict must be true or false";
        return false;
      }
      hp.strict = entry.scalar == "true";
    } else if (entry.key == "note") {
      // Documentation only.
    } else {
      error = "line " + std::to_string(entry.line) + ": unknown hotpath key " +
              entry.key;
      return false;
    }
  }
  if (hp.file.empty() || hp.functions.empty()) {
    error = "line " + std::to_string(section.line) +
            ": [[hotpath]] needs file and functions";
    return false;
  }
  if (hp.name.empty()) hp.name = hp.file;
  return true;
}

bool fill_budget(const textscan::TomlSection& section, BudgetSpec& budget,
                 std::string& error) {
  budget.line = section.line;
  for (const auto& entry : section.entries) {
    if (entry.is_array) {
      error = "line " + std::to_string(entry.line) + ": budget key " +
              entry.key + " needs a scalar";
      return false;
    }
    if (entry.key == "name") {
      budget.name = entry.scalar;
    } else if (entry.key == "note") {
      // Documentation only.
    } else {
      if (!is_integer(entry.scalar)) {
        error = "line " + std::to_string(entry.line) + ": budget key " +
                entry.key + " needs a non-negative integer";
        return false;
      }
      budget.values[entry.key] = entry.scalar;
    }
  }
  if (budget.name.empty() || budget.values.empty()) {
    error = "line " + std::to_string(section.line) +
            ": [[budget]] needs a name and at least one integer key";
    return false;
  }
  return true;
}

}  // namespace

bool parse_spec(const std::string& text, Spec& spec, std::string& error) {
  spec = Spec{};
  std::vector<textscan::TomlSection> sections;
  if (!textscan::parse_toml_subset(text, sections, error)) return false;
  for (const auto& section : sections) {
    if (section.is_array_of_tables && section.name == "hotpath") {
      HotPathSpec hp;
      if (!fill_hotpath(section, hp, error)) return false;
      spec.hotpaths.push_back(std::move(hp));
    } else if (section.is_array_of_tables && section.name == "budget") {
      BudgetSpec budget;
      if (!fill_budget(section, budget, error)) return false;
      spec.budgets.push_back(std::move(budget));
    } else if (!section.is_array_of_tables && section.name == "options") {
      for (const auto& entry : section.entries) {
        if (entry.key == "roots" && entry.is_array) {
          spec.roots = entry.items;
        } else {
          error = "line " + std::to_string(entry.line) + ": unknown option " +
                  entry.key;
          return false;
        }
      }
    } else if (!section.is_array_of_tables && section.name == "allow") {
      for (const auto& entry : section.entries) {
        if (!entry.is_array) {
          error = "line " + std::to_string(entry.line) + ": bad allow array";
          return false;
        }
        spec.allow[entry.key] = entry.items;
      }
    } else {
      error = "line " + std::to_string(section.line) + ": unknown section " +
              section.name;
      return false;
    }
  }
  std::set<std::string> seen;
  for (const BudgetSpec& budget : spec.budgets) {
    if (!seen.insert(budget.name).second) {
      error = "line " + std::to_string(budget.line) + ": duplicate budget " +
              budget.name;
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Token-level helpers

namespace {

/// Containers whose construction allocates (or will on first growth) and
/// whose by-value copy is O(payload).
const std::set<std::string>& allocating_containers() {
  static const std::set<std::string> kContainers = {
      "vector",        "string",
      "basic_string",  "deque",
      "list",          "forward_list",
      "map",           "multimap",
      "set",           "multiset",
      "unordered_map", "unordered_multimap",
      "unordered_set", "unordered_multiset",
      "stringstream",  "ostringstream",
      "istringstream", "function"};
  return kContainers;
}

/// Node-based associative containers: every lookup is a hash + chain walk or
/// a tree descent — the per-message cost RNH403 exists to flag.
const std::set<std::string>& map_types() {
  static const std::set<std::string> kMaps = {
      "map", "multimap", "unordered_map", "unordered_multimap"};
  return kMaps;
}

const std::set<std::string>& map_ops() {
  static const std::set<std::string> kOps = {
      "find", "at", "count", "contains", "emplace", "try_emplace",
      "insert", "insert_or_assign", "erase"};
  return kOps;
}

const std::set<std::string>& format_idents() {
  static const std::set<std::string> kFormat = {
      "to_string", "snprintf", "sprintf", "ostringstream", "stringstream"};
  return kFormat;
}

/// True when any of the `count` tokens before `i`, scanning back to the
/// previous statement boundary, equals `word`.
bool preceded_by(const std::vector<Tok>& toks, std::size_t i,
                 const char* word) {
  for (std::size_t back = 0; back < 6 && i > back; ++back) {
    const Tok& t = toks[i - 1 - back];
    if (t.text == ";" || t.text == "{" || t.text == "}") return false;
    if (t.text == word) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver

Driver::Driver(Spec spec, std::string spec_path)
    : spec_(std::move(spec)), spec_path_(std::move(spec_path)) {}

void Driver::add_file(const std::string& path, const std::string& content) {
  files_.emplace(path, strip_source(path, content));
}

void Driver::set_partial(bool partial) { partial_ = partial; }

bool Driver::allowed(const std::string& rule, const std::string& path) const {
  auto it = spec_.allow.find(rule);
  return it != spec_.allow.end() &&
         textscan::matches_any_prefix(path, it->second);
}

namespace {

struct HotFileAnalysis {
  const std::vector<Tok>& toks;
  const std::string& path;
  std::vector<Finding>& findings;

  /// Names of variables (locals, members, parameters) of map type anywhere
  /// in the file — collected file-wide so member maps declared in the class
  /// body are visible inside hot member functions.
  std::set<std::string> map_vars;

  /// Scans `source` (the hot file itself, or a sibling header where member
  /// maps are declared) for map-typed variable declarations.
  void collect_map_vars(const std::vector<Tok>& source) {
    for (std::size_t i = 0; i + 1 < source.size(); ++i) {
      if (source[i].kind != Tok::Kind::kIdent) continue;
      if (map_types().count(source[i].text) == 0) continue;
      if (!tok_is(source, i + 1, "<")) continue;
      std::size_t j = skip_angles(source, i + 1);
      while (j < source.size() &&
             (source[j].text == "&" || source[j].text == "*" ||
              source[j].text == "const")) {
        ++j;
      }
      if (j < source.size() && source[j].kind == Tok::Kind::kIdent &&
          textscan::cpp_keywords().count(source[j].text) == 0) {
        map_vars.insert(source[j].text);
      }
    }
  }

  void flag(std::size_t line, const char* rule, std::string message) {
    findings.push_back({path, line, rule, std::move(message)});
  }

  // RNH402 — containers passed by value through the parameter list.
  void check_params(const FunctionBody& fn) {
    std::size_t start = fn.params_begin;
    std::size_t i = fn.params_begin;
    int depth = 0;  // brackets and template angles both nest commas
    while (i <= fn.params_end) {
      const bool at_end = i == fn.params_end;
      if (!at_end && (bracket_is_open(toks[i].text) || toks[i].text == "<")) {
        ++depth;
      }
      if (!at_end && (bracket_is_close(toks[i].text) || toks[i].text == ">")) {
        --depth;
      }
      const bool boundary =
          at_end || (depth == 0 && toks[i].text == ",");
      if (boundary) {
        check_one_param(fn, start, i);
        start = i + 1;
      }
      ++i;
    }
  }

  void check_one_param(const FunctionBody& fn, std::size_t begin,
                       std::size_t end) {
    std::size_t container_tok = toks.size();
    int depth = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const std::string& t = toks[i].text;
      if (t == "<") ++depth;
      if (t == ">") --depth;
      if (depth == 0 && (t == "&" || t == "*")) return;  // by reference
      if (depth == 0 && t == "=") break;  // default argument expression
      if (container_tok == toks.size() &&
          toks[i].kind == Tok::Kind::kIdent &&
          allocating_containers().count(t) != 0) {
        container_tok = i;
      }
    }
    if (container_tok == toks.size()) return;
    flag(toks[container_tok].line, "RNH402",
         "hot function '" + fn.name + "' takes a " +
             toks[container_tok].text +
             " parameter by value; pass by (const) reference");
  }

  // RNH401 — heap allocation inside [begin, end).
  void check_allocations(const FunctionBody& fn, std::size_t begin,
                         std::size_t end, const char* where) {
    for (std::size_t i = begin; i < end; ++i) {
      if (toks[i].kind != Tok::Kind::kIdent) continue;
      const std::string& t = toks[i].text;
      if (t == "new") {
        flag(toks[i].line, "RNH401",
             std::string("operator new in ") + where + " of hot function '" +
                 fn.name + "'");
        continue;
      }
      if (t == "make_unique" || t == "make_shared") {
        flag(toks[i].line, "RNH401",
             t + " in " + where + " of hot function '" + fn.name + "'");
        continue;
      }
      if (allocating_containers().count(t) == 0) continue;
      // Require the std:: qualifier or a template argument list so member
      // names that shadow container names do not trip the rule.
      const bool qualified = i >= 2 && toks[i - 1].text == "::" &&
                             toks[i - 2].text == "std";
      if (!qualified && !tok_is(toks, i + 1, "<")) continue;
      if (preceded_by(toks, i, "static")) continue;  // one-time init
      std::size_t j = i + 1;
      if (tok_is(toks, j, "<")) j = skip_angles(toks, j);
      if (j >= end) continue;
      if (toks[j].text == "&" || toks[j].text == "*" ||
          toks[j].text == "::") {
        continue;  // reference/pointer declaration or nested-name use
      }
      const bool is_decl =
          toks[j].kind == Tok::Kind::kIdent &&
          (tok_is(toks, j + 1, ";") || tok_is(toks, j + 1, "=") ||
           tok_is(toks, j + 1, "{") || tok_is(toks, j + 1, "(") ||
           tok_is(toks, j + 1, ","));
      const bool is_temporary = toks[j].text == "{" || toks[j].text == "(";
      if (!is_decl && !is_temporary) continue;
      flag(toks[i].line, "RNH401",
           "constructs a " + t + " in " + where + " of hot function '" +
               fn.name + "'; hoist it out and reuse the buffer");
    }
  }

  // RNH403 — map operations anywhere in the hot body.
  void check_map_ops(const FunctionBody& fn) {
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      if (toks[i].kind != Tok::Kind::kIdent) continue;
      if (map_vars.count(toks[i].text) == 0) continue;
      if (tok_is(toks, i + 1, "[")) {
        flag(toks[i].line, "RNH403",
             "operator[] on map '" + toks[i].text + "' in hot function '" +
                 fn.name + "'; use an index-addressed flat structure");
        continue;
      }
      if (tok_is(toks, i + 1, ".") && i + 2 < fn.body_end &&
          toks[i + 2].kind == Tok::Kind::kIdent &&
          map_ops().count(toks[i + 2].text) != 0 &&
          tok_is(toks, i + 3, "(")) {
        flag(toks[i].line, "RNH403",
             "map '" + toks[i].text + "'." + toks[i + 2].text +
                 "() in hot function '" + fn.name +
                 "'; use an index-addressed flat structure");
      }
    }
  }

  // RNH404 — push loops with no prior reserve/resize in the same function.
  void check_push_loops(const FunctionBody& fn,
                        const std::vector<LoopRange>& loops) {
    for (const LoopRange& loop : loops) {
      std::set<std::string> flagged;
      for (std::size_t i = loop.begin; i + 3 < loop.end; ++i) {
        if (toks[i].kind != Tok::Kind::kIdent) continue;
        if (!tok_is(toks, i + 1, ".")) continue;
        const std::string& op = toks[i + 2].text;
        if (op != "push_back" && op != "emplace_back") continue;
        if (!tok_is(toks, i + 3, "(")) continue;
        const std::string& var = toks[i].text;
        if (flagged.count(var) != 0) continue;
        if (has_capacity_call(fn, i, var)) continue;
        flagged.insert(var);
        flag(toks[i].line, "RNH404",
             "loop grows '" + var + "' via " + op +
                 " with no prior reserve()/resize() in hot function '" +
                 fn.name + "'");
      }
    }
  }

  /// True when `var` has a reserve()/resize() call anywhere in the function
  /// body before token index `before` (the push site — a reserve inside an
  /// outer loop still sizes the vector the inner loop grows).
  bool has_capacity_call(const FunctionBody& fn, std::size_t before,
                         const std::string& var) {
    for (std::size_t i = fn.body_begin; i + 3 < before; ++i) {
      if (toks[i].kind != Tok::Kind::kIdent || toks[i].text != var) continue;
      if (!tok_is(toks, i + 1, ".")) continue;
      const std::string& op = toks[i + 2].text;
      if ((op == "reserve" || op == "resize") && tok_is(toks, i + 3, "(")) {
        return true;
      }
    }
    return false;
  }

  // RNH405 — string formatting anywhere in the hot body.
  void check_formatting(const FunctionBody& fn) {
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      if (toks[i].kind != Tok::Kind::kIdent) continue;
      const std::string& t = toks[i].text;
      const bool std_format = t == "format" && i >= 2 &&
                              toks[i - 1].text == "::" &&
                              toks[i - 2].text == "std";
      if (format_idents().count(t) == 0 && !std_format) continue;
      flag(toks[i].line, "RNH405",
           "string formatting (" + t + ") in hot function '" + fn.name +
               "'; format outside the hot path");
    }
  }
};

}  // namespace

Driver::Result Driver::run() {
  Result result;
  result.files_checked = files_.size();

  // Tokenize every registered file once; hot files are analysed from this.
  std::map<std::string, std::vector<Tok>> tokens;
  for (const auto& [path, file] : files_) {
    tokens.emplace(path, tokenize(file.code));
  }

  for (const HotPathSpec& hp : spec_.hotpaths) {
    auto it = files_.find(hp.file);
    if (it == files_.end()) {
      if (!partial_) {
        result.findings.push_back(
            {spec_path_, hp.line, "RNH410",
             "hotpath '" + hp.name + "': file " + hp.file +
                 " is not in the tree"});
      }
      continue;
    }
    const std::vector<Tok>& toks = tokens.at(hp.file);
    HotFileAnalysis analysis{toks, hp.file, result.findings, {}};
    analysis.collect_map_vars(toks);
    // Member maps are declared in the class body: when the hot file is a
    // .cpp, pull declarations from its sibling header too.
    const std::size_t dot = hp.file.rfind('.');
    if (dot != std::string::npos && hp.file.substr(dot) == ".cpp") {
      for (const char* ext : {".hpp", ".h"}) {
        auto sibling = tokens.find(hp.file.substr(0, dot) + ext);
        if (sibling != tokens.end()) {
          analysis.collect_map_vars(sibling->second);
        }
      }
    }
    for (const std::string& fn_name : hp.functions) {
      const std::vector<FunctionBody> defs = find_functions(toks, fn_name);
      if (defs.empty()) {
        result.findings.push_back(
            {spec_path_, hp.line, "RNH410",
             "hotpath '" + hp.name + "': function " + fn_name +
                 " not found in " + hp.file});
        continue;
      }
      for (const FunctionBody& fn : defs) {
        ++result.hot_functions_checked;
        const std::vector<LoopRange> loops =
            collect_loops(toks, fn.body_begin, fn.body_end);
        analysis.check_params(fn);
        if (hp.strict) {
          analysis.check_allocations(fn, fn.body_begin, fn.body_end, "body");
        } else {
          for (const LoopRange& loop : loops) {
            analysis.check_allocations(fn, loop.begin, loop.end, "loop");
          }
        }
        analysis.check_map_ops(fn);
        analysis.check_push_loops(fn, loops);
        analysis.check_formatting(fn);
      }
    }
  }

  // Suppressions: drop findings covered by an inline allow; flag malformed
  // suppression comments; honour [allow] path carve-outs.
  std::vector<Finding> kept;
  for (Finding& finding : result.findings) {
    if (allowed(finding.rule, finding.file)) {
      ++result.suppressed;
      result.suppressed_findings.push_back(std::move(finding));
      continue;
    }
    kept.push_back(std::move(finding));
  }
  result.findings = std::move(kept);

  for (const auto& [path, file] : files_) {
    const textscan::LineSuppressions sup =
        textscan::collect_suppressions(file, "reconfnet-hotcheck:", "RNH");
    for (std::size_t line : sup.malformed) {
      if (allowed("RNH490", path)) continue;
      result.findings.push_back(
          {path, line, "RNH490",
           "malformed reconfnet-hotcheck suppression (want "
           "'reconfnet-hotcheck: allow(RNHnnn) reason')"});
    }
    std::set<std::pair<std::size_t, std::string>> used;
    if (!sup.allow.empty()) {
      std::vector<Finding> remaining;
      for (Finding& finding : result.findings) {
        if (finding.file == path) {
          auto it = sup.allow.find(finding.line);
          if (it != sup.allow.end() && it->second.count(finding.rule) != 0) {
            ++result.suppressed;
            used.insert({finding.line, finding.rule});
            result.suppressed_findings.push_back(std::move(finding));
            continue;
          }
        }
        remaining.push_back(std::move(finding));
      }
      result.findings = std::move(remaining);
    }
    const auto stale = textscan::stale_suppressions(path, sup, used);
    result.stale.insert(result.stale.end(), stale.begin(), stale.end());
  }

  textscan::sort_and_dedupe(result.findings);
  textscan::sort_and_dedupe(result.suppressed_findings);
  return result;
}

}  // namespace reconfnet::hotcheck
