// reconfnet_hotcheck — hot-path allocation/copy analyzer for the reconfnet
// tree.
//
// The paper's per-round O(log n) communication bounds (Section 5) only
// translate into wall-clock scalability if the simulator's constant factors
// stay flat per message. ROADMAP item 1 (the million-node engine) therefore
// needs an allocation-light, cache-friendly data plane — and nothing short of
// a profiler run used to stop per-round heap churn from creeping into
// `sim::Bus` or the overlay epoch loops. This third zero-dependency checker
// (on the shared tools/lint/textscan machinery, like reconfnet_lint and
// reconfnet_protocheck) closes that gap: a machine-readable spec,
// tools/hotcheck/hotpaths.toml, declares the hot functions, and the checker
// flags the allocation/copy patterns that dominate per-message constants.
//
//   [[hotpath]]  one entry per hot region: the file, the function names
//                declared hot in it, and whether the functions are `strict`
//                (per-message leaves where ANY container construction is
//                per-round churn) or loop-scoped (drivers where only
//                allocation inside loops is flagged).
//   [[budget]]   named allocation budgets (allocs-per-round etc.) enforced
//                at runtime by tests/allocbudget_test.cpp through the
//                support::AllocCounter harness — the same file pins the
//                budgets statically and dynamically.
//   [options]    `roots`: path prefixes walked by the tree gate.
//   [allow]      rule id -> path prefixes where the rule is off wholesale.
//
// Rules (each finding prints `file:line: RNHxxx message`):
//
//   RNH401  heap allocation in a hot region: `new` / make_unique /
//           make_shared / construction of an allocating std container inside
//           a hot loop (or anywhere in a `strict` function)
//   RNH402  hot-function parameter takes an allocating container by value
//           (copies the payload per call; pass by reference or std::move)
//   RNH403  std::map / std::unordered_map operation in a hot function
//           (per-message hashing/tree walk; use an index-addressed flat
//           structure keyed by dense NodeId instead)
//   RNH404  push_back/emplace_back loop in a hot function with no prior
//           reserve()/resize() of the same vector in that function
//   RNH405  string formatting in a hot function (to_string, str streams,
//           s(n)printf, std::format)
//   RNH410  hotpaths.toml drift: a declared file is missing from the tree or
//           a declared hot function is not found in its file
//   RNH490  malformed reconfnet-hotcheck suppression comment
//
// Suppressions: `// reconfnet-hotcheck: allow(RNH404) <reason>` on the
// offending line or alone on the line above. Findings anchored to the spec
// file (RNH410) are fixed by editing the spec or the code.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "../lint/textscan.hpp"

namespace reconfnet::hotcheck {

using textscan::Finding;
using textscan::SourceFile;
using textscan::strip_source;

/// One [[hotpath]] entry: functions of one file declared hot.
struct HotPathSpec {
  std::string name;  ///< display name (optional; defaults to the file)
  std::string file;  ///< repo-relative file holding the functions
  std::vector<std::string> functions;  ///< function names declared hot
  /// Strict functions are per-message leaves: any container construction in
  /// the body is per-round churn. Non-strict functions are drivers: only
  /// allocation inside their loops is flagged.
  bool strict = false;
  std::size_t line = 0;  ///< line in hotpaths.toml
};

/// One [[budget]] entry: a named allocation budget. The checker only
/// validates shape; tests/allocbudget_test.cpp enforces the numbers at
/// runtime via support::AllocCounter.
struct BudgetSpec {
  std::string name;
  /// key -> integer scalar as written ("allocs_per_round" -> "0", ...).
  std::map<std::string, std::string> values;
  std::size_t line = 0;
};

struct Spec {
  std::vector<std::string> roots = {"src/"};
  std::vector<HotPathSpec> hotpaths;
  std::vector<BudgetSpec> budgets;
  /// rule id -> path prefixes where the rule is switched off wholesale.
  std::map<std::string, std::vector<std::string>> allow;
};

/// Parses hotpaths.toml. Returns false and fills `error` on malformed input
/// (unknown sections/keys, missing required fields, non-integer budgets).
bool parse_spec(const std::string& text, Spec& spec, std::string& error);

/// The static rule catalogue (--list-rules output).
const std::vector<textscan::RuleInfo>& rules();

class Driver {
 public:
  /// `spec_path` is where spec-anchored findings (RNH410) are reported; it
  /// defaults to the canonical location.
  explicit Driver(Spec spec,
                  std::string spec_path = "tools/hotcheck/hotpaths.toml");

  /// Registers a file for the run. Paths must be repo-relative with '/'
  /// separators; contents are stripped immediately.
  void add_file(const std::string& path, const std::string& content);

  /// Partial runs (an explicit file list instead of the full tree) skip the
  /// drift checks (RNH410) for hotpath files that were not registered.
  void set_partial(bool partial);

  struct Result {
    std::vector<Finding> findings;  // sorted by (file, line, rule)
    /// Findings dropped by an inline allow or an [allow] carve-out, kept for
    /// SARIF suppression records.
    std::vector<Finding> suppressed_findings;
    /// Inline suppression comments whose rule no longer fires on the line
    /// they cover (the --stale-suppressions report).
    std::vector<textscan::StaleSuppression> stale;
    std::size_t files_checked = 0;
    std::size_t suppressed = 0;
    std::size_t hot_functions_checked = 0;
  };

  /// Runs every rule over the registered files. Deterministic: files are
  /// processed in sorted path order and findings are sorted.
  Result run();

 private:
  [[nodiscard]] bool allowed(const std::string& rule,
                             const std::string& path) const;

  Spec spec_;
  std::string spec_path_;
  bool partial_ = false;
  std::map<std::string, SourceFile> files_;
};

}  // namespace reconfnet::hotcheck
