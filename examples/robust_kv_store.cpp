// A robust key-value store with a publish-subscribe feed (Sections 7.2/7.3).
//
// Scenario: a distributed configuration store plus a change-notification
// feed, hosted on servers that an attacker keeps blocking. The store runs on
// the reconfiguring k-ary grouped hypercube (RoBuSt-lite): every key's record
// is replicated across its home group, requests are routed one digit per
// hop, and a reconfiguration between writes and reads loses nothing.
#include <iostream>
#include <vector>

#include "apps/dht/kary_overlay.hpp"
#include "apps/dht/robust_store.hpp"
#include "apps/pubsub/pubsub.hpp"
#include "support/rng.hpp"

int main() {
  using namespace reconfnet;

  apps::KaryGroupedOverlay::Config config;
  config.size = 1024;
  config.arity = 4;
  config.group_c = 2.0;
  config.seed = 5;
  apps::KaryGroupedOverlay overlay(config);
  apps::RobustStore store(&overlay);
  apps::PubSub feed(&store);
  support::Rng rng(11);

  std::cout << "k-ary grouped hypercube: k=" << overlay.cube().arity()
            << ", d=" << overlay.cube().dimension() << ", "
            << overlay.cube().size() << " supernodes over " << overlay.size()
            << " servers\n\n";

  // 30% of servers are blocked in every pipeline round.
  const auto pipeline =
      static_cast<std::size_t>(overlay.cube().dimension()) + 2;
  std::vector<sim::BlockedSet> blocked(pipeline);
  for (auto& set : blocked) {
    for (sim::NodeId node = 0; node < 1024; ++node) {
      if (rng.bernoulli(0.3)) set.insert(node);
    }
  }

  // 1. Write a configuration snapshot (200 keys) through the blockade.
  std::vector<apps::RobustStore::Request> writes;
  for (std::uint64_t key = 0; key < 200; ++key) {
    writes.push_back({true, key, 7000 + key});
  }
  const auto wrote = store.execute(writes, blocked, rng);
  std::cout << "writes: " << wrote.write_ok << "/200 stored, "
            << wrote.rounds << " rounds, busiest group saw "
            << wrote.max_group_congestion << " hops\n";

  // 2. Publish change notifications on a feed.
  const std::vector<apps::PubSub::Payload> changes{101, 102, 103};
  const auto published = feed.publish(/*topic=*/1, changes, blocked, rng);
  std::cout << "published " << published.published
            << "/3 change notifications\n";

  // 3. The overlay reconfigures (new random groups). Replication hands every
  //    record to the fresh groups.
  const auto epoch = store.reconfigure({});
  std::cout << "reconfiguration: "
            << (epoch.success ? "groups rebuilt" : epoch.failure_reason)
            << ", " << store.record_count() << " records retained\n";

  // 4. Read everything back through a fresh blockade.
  for (auto& set : blocked) {
    set.clear();
    for (sim::NodeId node = 0; node < 1024; ++node) {
      if (rng.bernoulli(0.3)) set.insert(node);
    }
  }
  std::vector<apps::RobustStore::Request> reads;
  for (std::uint64_t key = 0; key < 200; ++key) {
    reads.push_back({false, key, 0});
  }
  const auto read = store.execute(reads, blocked, rng);
  std::cout << "reads:  " << read.read_ok << "/200 served after "
            << "reconfiguration under a fresh 30% blockade\n";

  // 5. A subscriber catches up on the feed.
  const auto fetched = feed.fetch_since(1, 0, blocked, rng);
  std::cout << "subscriber fetched " << fetched.payloads.size()
            << " notifications (complete=" << (fetched.complete ? "yes" : "no")
            << "): ";
  for (auto payload : fetched.payloads) std::cout << payload << " ";
  std::cout << "\n";
  return 0;
}
