// Three ways to reconfigure an overlay, raced on the same network size:
//
//   1. Algorithm 3 with rapid node sampling   (the paper's contribution)
//   2. Algorithm 3 with plain random walks    (the obvious baseline)
//   3. Skip-graph routing                     (the Section 1.2 alternative)
//
// All three produce a fresh uniformly random topology; they differ in the
// number of synchronous communication rounds the network is "in transit" —
// which is exactly the delay T within which churn must be absorbed and the
// window a DoS adversary's stale knowledge stays useful.
#include <iomanip>
#include <iostream>
#include <numeric>

#include "churn/reconfigure.hpp"
#include "graph/hgraph.hpp"
#include "graph/skip_graph.hpp"
#include "support/rng.hpp"

int main() {
  using namespace reconfnet;
  support::Rng rng(2026);

  std::cout << "rounds to reconfigure (lower = harder to attack)\n\n";
  std::cout << std::left << std::setw(8) << "n" << std::setw(18)
            << "rapid sampling" << std::setw(18) << "plain walks"
            << "skip-graph routing\n";

  for (const std::size_t n : {256u, 512u, 1024u, 2048u}) {
    const auto g = graph::HGraph::random(n, 8, rng);
    churn::ReconfigInput input;
    input.topology = &g;
    input.members.resize(n);
    std::iota(input.members.begin(), input.members.end(), sim::NodeId{0});
    input.leaving.assign(n, false);
    input.joiners.assign(n, {});
    input.sampling.c = 2.0;
    input.estimate = sampling::SizeEstimate::from_true_size(n);

    auto rapid_rng = rng.split(1);
    const auto rapid = churn::reconfigure(input, rapid_rng);

    input.use_plain_walk_sampling = true;
    auto plain_rng = rng.split(2);
    const auto plain = churn::reconfigure(input, plain_rng);

    // Skip-graph: every node routes to a fresh random key; the slowest
    // route bounds the parallel routing phase (list rebuild not counted).
    const auto skip = graph::SkipGraph::random(n, rng);
    std::size_t max_hops = 0;
    for (std::size_t v = 0; v < n; ++v) {
      max_hops = std::max(max_hops, skip.route(v, rng.next()).size());
    }

    std::cout << std::setw(8) << n << std::setw(18)
              << (rapid.success ? std::to_string(rapid.rounds)
                                : rapid.failure_reason)
              << std::setw(18)
              << (plain.success ? std::to_string(plain.rounds)
                                : plain.failure_reason)
              << max_hops << "+ (routing only)\n";
  }

  std::cout << "\nThe rapid column barely moves as n grows 8x — that's "
               "O(log log n).\nThe other two track log n, which is what the "
               "paper's sampling primitive removes\nfrom the critical "
               "path.\n";
  return 0;
}
