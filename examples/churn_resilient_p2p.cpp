// A churn-resilient peer-to-peer membership service.
//
// Scenario: a file-sharing swarm where peers constantly come and go — the
// motivating workload of the paper's introduction. The swarm keeps itself
// organized as a reconfiguring H-graph; we subject it to three increasingly
// hostile churn regimes, including a topology-aware attacker that always
// removes a contiguous run of one live Hamilton cycle, and verify that the
// overlay never fragments and every join completes within two epochs
// (the paper's T = O(log log n) delay).
#include <iomanip>
#include <iostream>
#include <unordered_set>

#include "adversary/churn.hpp"
#include "churn/overlay.hpp"
#include "support/rng.hpp"

namespace {

using namespace reconfnet;

void run_phase(churn::ChurnOverlay& overlay,
               adversary::ChurnAdversary& adversary, const char* name,
               int epochs, adversary::SegmentChurn* topology_aware = nullptr) {
  std::cout << "\n--- phase: " << name << " ---\n";
  std::cout << std::left << std::setw(7) << "epoch" << std::setw(9)
            << "members" << std::setw(8) << "joins" << std::setw(8) << "leaves"
            << std::setw(8) << "rounds" << "max empty segment / cycle\n";
  for (int epoch = 0; epoch < epochs; ++epoch) {
    if (topology_aware != nullptr) {
      // The adversary is omniscient: give it a live view of cycle 0.
      topology_aware->set_order(overlay.cycle_order(0));
    }
    const auto report = overlay.run_epoch(adversary);
    if (!report.success) {
      std::cout << std::setw(7) << epoch << "failed: "
                << report.failure_reason << " (retrying next epoch)\n";
      continue;
    }
    std::size_t worst_gap = 0;
    for (const auto& stats : report.cycle_stats) {
      worst_gap = std::max(worst_gap, stats.max_empty_segment);
    }
    std::cout << std::setw(7) << epoch << std::setw(9)
              << report.members_after << std::setw(8) << report.joins_applied
              << std::setw(8) << report.leaves_applied << std::setw(8)
              << report.rounds << worst_gap << "\n";
    if (!report.connected) {
      std::cout << "!! overlay disconnected — this should never happen\n";
    }
  }
}

}  // namespace

int main() {
  using namespace reconfnet;

  churn::ChurnOverlay::Config config;
  config.initial_size = 200;
  config.degree = 8;
  config.sampling.c = 2.0;
  config.seed = 2026;
  churn::ChurnOverlay overlay(config);
  std::cout << "swarm bootstrapped with " << overlay.members().size()
            << " peers on a degree-" << config.degree << " H-graph\n";

  // Phase 1: organic growth — twice as many arrivals as departures.
  support::Rng rng(1);
  adversary::UniformChurn growth(0.01, 2.0, 4.0, rng.split(1));
  run_phase(overlay, growth, "organic growth (1%/round, 2x arrivals)", 5);

  // Phase 2: flash crowd leaving — a burst tears out 25% at once.
  adversary::BurstChurn exodus(0.25, 2.0, 3, rng.split(2));
  run_phase(overlay, exodus, "flash exodus (25% burst every 3 rounds)", 5);

  // Phase 3: a topology-aware attacker deletes contiguous cycle segments.
  adversary::SegmentChurn attacker(0.02, 2.0, rng.split(3));
  run_phase(overlay, attacker, "targeted segment attack (2%/round)", 5,
            &attacker);

  // Every id that ever joined either is a member or has left for good —
  // the membership is monotonic.
  const auto& everyone = overlay.ever_members();
  std::unordered_set<sim::NodeId> current(overlay.members().begin(),
                                          overlay.members().end());
  std::cout << "\nlifetime peers: " << everyone.size()
            << ", active now: " << current.size()
            << ", departed for good: " << everyone.size() - current.size()
            << "\nno phase fragmented the swarm.\n";
  return 0;
}
