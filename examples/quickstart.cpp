// Quickstart: the smallest useful reconfnet program.
//
// Builds the churn-resistant overlay of Section 4 — an H-graph that rebuilds
// itself from scratch every O(log log n) rounds via rapid node sampling — and
// runs it for a few epochs while an adversary churns 2% of the members every
// round. The overlay absorbs the churn and stays connected throughout.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "adversary/churn.hpp"
#include "churn/overlay.hpp"
#include "support/rng.hpp"

int main() {
  using namespace reconfnet;

  // 1. Configure the overlay: 256 initial nodes, degree-8 H-graph (four
  //    Hamilton cycles), Lemma 7 schedule constant c = 2.
  churn::ChurnOverlay::Config config;
  config.initial_size = 256;
  config.degree = 8;
  config.sampling.c = 2.0;
  config.seed = 42;
  churn::ChurnOverlay overlay(config);

  // 2. An omniscient adversary that removes 2% of the members per round and
  //    introduces one new node (to a random survivor) per removal.
  support::Rng rng(7);
  adversary::UniformChurn churn(/*turnover=*/0.02, /*growth=*/1.0,
                                /*rate=*/2.0, rng);

  // 3. Run reconfiguration epochs. Each epoch samples new random positions
  //    for every node, weaves joiners in, drops leavers, and swaps to a
  //    brand-new uniformly random H-graph.
  std::cout << "epoch  members  joined  left  rounds  connected\n";
  for (int epoch = 0; epoch < 6; ++epoch) {
    const auto report = overlay.run_epoch(churn);
    if (!report.success) {
      // Failures are w.h.p. events; the overlay keeps its old topology and
      // retries next epoch with the staged churn intact.
      std::cout << epoch << "  epoch failed (" << report.failure_reason
                << "), retrying\n";
      continue;
    }
    std::cout << epoch << "      " << report.members_after << "      "
              << report.joins_applied << "      " << report.leaves_applied
              << "     " << report.rounds << "      "
              << (report.connected ? "yes" : "NO") << "\n";
  }

  std::cout << "\nSurvived " << overlay.round()
            << " rounds of 2%-per-round adversarial churn; current overlay "
            << "has " << overlay.members().size() << " members.\n";
  return 0;
}
