// An anonymizing relay service under active DoS attack (Section 7.1).
//
// A Tor-style scenario: users exchange messages through a fleet of relay
// servers. An attacker who can observe the relay topology — but only with a
// delay — blocks over a third of the fleet every round, trying to cut users
// off or to learn which exit relays serve which users. Because the fleet
// reorganizes its groups every O(log log n) rounds, the attacker's stale
// knowledge is worthless: messages keep flowing and the exit relays it
// observes look uniformly random.
#include <iostream>
#include <vector>

#include "adversary/dos.hpp"
#include "apps/anonym/anonymizer.hpp"
#include "dos/overlay.hpp"
#include "sim/stale_view.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

int main() {
  using namespace reconfnet;

  // The relay fleet: 512 servers on the DoS-resistant grouped hypercube.
  dos::DosOverlay::Config config;
  config.size = 512;
  config.group_c = 2.0;  // groups of ~32 relays
  config.seed = 99;
  dos::DosOverlay overlay(config);
  std::cout << "relay fleet: " << overlay.size() << " servers, "
            << overlay.groups().supernodes() << " supernodes of ~"
            << overlay.size() / overlay.groups().supernodes()
            << " relays each\n\n";

  // The attacker: isolation strategy, 35% blocking budget, but its topology
  // view is two reconfiguration epochs old.
  support::Rng attacker_rng(13);
  adversary::IsolationDos attacker(attacker_rng);
  dos::DosOverlay::Attack attack;
  attack.adversary = &attacker;
  attack.blocked_fraction = 0.35;
  attack.lateness = 40;

  support::Rng rng(7);
  std::size_t sent = 0;
  std::size_t delivered = 0;
  std::size_t replied = 0;
  std::vector<std::uint64_t> exit_counts(overlay.size(), 0);

  std::cout << "generation  reconfigured  delivered  replied\n";
  for (int generation = 0; generation < 8; ++generation) {
    // The fleet reorganizes while under attack...
    const auto epoch = overlay.run_epoch(attack);
    // ...then serves a batch of user messages. The attacker keeps blocking
    // during the batch; we draw its per-round blocked sets the same way.
    std::vector<sim::BlockedSet> blocked;
    for (sim::Round r = 0; r < apps::kAnonymizerPipelineRounds; ++r) {
      blocked.push_back(attacker.choose(sim::StaleSnapshotView{},
                                        overlay.groups().all_nodes(),
                                        static_cast<std::size_t>(
                                            0.35 * 512),
                                        overlay.round() + r));
    }
    std::vector<apps::AnonymousRequest> batch(50);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i] = {10000 + sent + i, 20000 + sent + i};
    }
    const auto report = apps::route_anonymous_batch(overlay.groups(), batch,
                                                    blocked, rng);
    sent += report.requests;
    delivered += report.delivered;
    replied += report.replied;
    for (auto exit : report.exit_servers) ++exit_counts[exit];
    std::cout << generation << "           "
              << (epoch.reorganized ? "yes" : "no ") << "           "
              << report.delivered << "/" << report.requests << "      "
              << report.replied << "/" << report.requests << "\n";
  }

  const double tv = support::tv_distance_from_uniform(exit_counts);
  // Sparse-sample noise floor: what TV would truly uniform exits show with
  // the same number of draws over the same number of relays?
  std::vector<std::uint64_t> reference(overlay.size(), 0);
  std::uint64_t draws = 0;
  for (auto count : exit_counts) draws += count;
  for (std::uint64_t i = 0; i < draws; ++i) {
    ++reference[rng.below(overlay.size())];
  }
  const double floor = support::tv_distance_from_uniform(reference);
  std::cout << "\ntotals: " << delivered << "/" << sent
            << " delivered, " << replied << "/" << sent
            << " round-trips completed under a 35% blocking attack\n"
            << "exit-relay TV distance from uniform: " << tv
            << " vs " << floor
            << " for the same number of truly uniform draws — the observed "
            << "exits are as uniform as chance allows, so the attacker "
            << "learns nothing about destinations\n";
  return 0;
}
