// Experiment F2 (Lemmas 11/12): during Algorithm 3, the number of times any
// node is chosen in Phase 1 and the largest empty segment of a cycle are
// both polylogarithmic w.h.p.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "churn/reconfigure.hpp"
#include "graph/hgraph.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "F2_reconfig_structure",
      "F2: Phase 1 congestion and empty segments (Lemmas 11/12)",
      "Claim: max times a node is chosen and the largest empty segment both "
      "stay polylogarithmic in n."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    support::Table table({"n", "log2(n)", "log2^2(n)", "max_chosen",
                          "max_empty_seg", "active_frac"});
    const std::vector<std::size_t> cells{64, 128, 256, 512, 1024, 2048};
    bench::sweep(
        ctx, table, cells, {"max_chosen", "max_empty_segment", "active_frac"},
        [](std::size_t n) {
          return "n=" + support::Table::num(static_cast<std::uint64_t>(n));
        },
        [&](std::size_t n, runtime::TrialContext& trial) {
          auto graph_rng = trial.rng.split(0);
          const auto g = graph::HGraph::random(n, 8, graph_rng);
          churn::ReconfigInput input;
          input.topology = &g;
          input.members.resize(n);
          for (std::size_t v = 0; v < n; ++v) input.members[v] = v;
          input.leaving.assign(n, false);
          input.joiners.assign(n, {});
          input.sampling.c = 2.0;
          input.estimate = sampling::SizeEstimate::from_true_size(n);

          std::size_t max_chosen = 0;
          std::size_t max_empty = 0;
          double active = 0.0;
          int ok_runs = 0;
          for (int run = 0; run < 3; ++run) {
            auto run_rng =
                trial.rng.split(1 + static_cast<std::uint64_t>(run));
            const auto result = churn::reconfigure(input, run_rng);
            if (!result.success) continue;
            ++ok_runs;
            for (const auto& stats : result.cycle_stats) {
              max_chosen = std::max(max_chosen, stats.max_times_chosen);
              max_empty = std::max(max_empty, stats.max_empty_segment);
              active += static_cast<double>(stats.active_nodes) /
                        static_cast<double>(n);
            }
          }
          return std::vector<double>{
              static_cast<double>(max_chosen), static_cast<double>(max_empty),
              ok_runs > 0 ? active / (4.0 * ok_runs) : 0.0};
        },
        [&](std::size_t n, const std::vector<double>& mean) {
          const double log_n = std::log2(static_cast<double>(n));
          const int digits = ctx.reps > 1 ? 1 : 0;
          return std::vector<std::string>{
              support::Table::num(static_cast<std::uint64_t>(n)),
              support::Table::num(log_n, 1),
              support::Table::num(log_n * log_n, 1),
              support::Table::num(mean[0], digits),
              support::Table::num(mean[1], digits),
              support::Table::num(mean[2], 3)};
        });
    ctx.show("phase1_structure", table);
    ctx.interpret(
        "Both structural quantities track log n (well below log^2 n) while n "
        "grows 32x — the polylog bounds of Lemmas 11 and 12 hold with small "
        "constants, which is what lets Phase 3 bridge empty segments in "
        "O(log log n) doubling steps.");
    return EXIT_SUCCESS;
  });
}
