// Experiment T6 (Lemma 18 / Theorem 7): the combined overlay under
// simultaneous churn and DoS attack — supernode dimensions stay within a
// window of 2 while the network grows or shrinks, and connectivity holds
// against a late (1/2-eps)-bounded adversary.
#include <cstdlib>
#include <iostream>

#include "adversary/churn.hpp"
#include "adversary/dos.hpp"
#include "bench/common.hpp"
#include "combined/overlay.hpp"
#include "support/rng.hpp"

int main() {
  using namespace reconfnet;
  bench::banner(
      "T6: combined churn + DoS (Lemma 18, Theorem 7)",
      "Claim: with churn rate gamma^{1/Theta(log log n)} and a late "
      "(1/2-eps)-bounded blocker, the split/merge overlay keeps "
      "|d(x)-d(y)| <= 2 and stays connected.");

  support::Table table({"churn/rd", "growth", "epochs_ok", "dim_spread_max",
                        "splits", "merges", "members_end", "disconn_rounds"});

  struct Scenario {
    double turnover;
    double growth;
  };
  const std::vector<Scenario> scenarios{
      {0.0, 1.0},    // DoS only
      {0.005, 1.0},  // steady turnover
      {0.01, 2.0},   // growth
      {0.005, 0.0},  // shrinkage
  };

  std::uint64_t seed = bench::kBenchSeed + 7;
  for (const auto& scenario : scenarios) {
    combined::CombinedOverlay::Config config;
    config.initial_size = 1024;
    config.group_c = 2.0;
    config.seed = seed;
    combined::CombinedOverlay overlay(config);

    support::Rng churn_rng(seed + 1), dos_rng(seed + 2);
    adversary::UniformChurn churn(scenario.turnover, scenario.growth, 4.0,
                                  churn_rng);
    adversary::IsolationDos dos_adversary(dos_rng);
    combined::CombinedOverlay::Attack attack;
    attack.adversary = &dos_adversary;
    attack.blocked_fraction = 0.3;
    attack.lateness = 60;

    int ok = 0;
    int spread = 0;
    int splits = 0;
    int merges = 0;
    std::size_t disconnected = 0;
    constexpr int kEpochs = 6;
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      const auto report = overlay.run_epoch(churn, attack);
      ok += report.success ? 1 : 0;
      spread = std::max(spread,
                        report.max_dimension - report.min_dimension);
      splits += report.split_merge.splits;
      merges += report.split_merge.merges;
      disconnected += report.disconnected_rounds;
    }
    table.add_row(
        {support::Table::num(scenario.turnover, 3),
         support::Table::num(scenario.growth, 1),
         support::Table::num(ok) + "/" + support::Table::num(kEpochs),
         support::Table::num(spread), support::Table::num(splits),
         support::Table::num(merges),
         support::Table::num(static_cast<std::uint64_t>(overlay.size())),
         support::Table::num(static_cast<std::uint64_t>(disconnected))});
    seed += 100;
  }
  table.print(std::cout);
  bench::interpretation(
      "The dimension window never exceeds 2 (Lemma 18) even while the "
      "network grows or shrinks by tens of percent per epoch under a 30% "
      "blocking attack; splits fire under growth, merges under shrinkage, "
      "and no round disconnects the non-blocked nodes (Theorem 7).");
  return EXIT_SUCCESS;
}
