// Experiment T6 (Lemma 18 / Theorem 7): the combined overlay under
// simultaneous churn and DoS attack — supernode dimensions stay within a
// window of 2 while the network grows or shrinks, and connectivity holds
// against a late (1/2-eps)-bounded adversary.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "adversary/churn.hpp"
#include "adversary/dos.hpp"
#include "bench/common.hpp"
#include "combined/overlay.hpp"
#include "support/rng.hpp"

namespace {

struct Scenario {
  double turnover;
  double growth;
  const char* label;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "T6_combined", "T6: combined churn + DoS (Lemma 18, Theorem 7)",
      "Claim: with churn rate gamma^{1/Theta(log log n)} and a late "
      "(1/2-eps)-bounded blocker, the split/merge overlay keeps "
      "|d(x)-d(y)| <= 2 and stays connected."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    const std::vector<Scenario> scenarios{
        {0.0, 1.0, "DoS only"},
        {0.005, 1.0, "steady turnover"},
        {0.01, 2.0, "growth"},
        {0.005, 0.0, "shrinkage"},
    };
    constexpr int kEpochs = 6;

    support::Table table({"churn/rd", "growth", "epochs_ok",
                          "dim_spread_max", "splits", "merges", "members_end",
                          "disconn_rounds"});
    const auto means = bench::sweep(
        ctx, table, scenarios,
        {"epochs_ok", "dim_spread_max", "splits", "merges", "members_end",
         "disconnected_rounds"},
        [](const Scenario& scenario) { return std::string(scenario.label); },
        [&](const Scenario& scenario, runtime::TrialContext& trial) {
          combined::CombinedOverlay::Config config;
          config.initial_size = 1024;
          config.group_c = 2.0;
          config.seed = trial.derive_seed();
          combined::CombinedOverlay overlay(config);

          adversary::UniformChurn churn(scenario.turnover, scenario.growth,
                                        4.0, trial.rng.split(1));
          adversary::IsolationDos dos_adversary(trial.rng.split(2));
          combined::CombinedOverlay::Attack attack;
          attack.adversary = &dos_adversary;
          attack.blocked_fraction = 0.3;
          attack.lateness = 60;

          double ok = 0.0;
          double spread = 0.0;
          double splits = 0.0;
          double merges = 0.0;
          double disconnected = 0.0;
          for (int epoch = 0; epoch < kEpochs; ++epoch) {
            const auto report = overlay.run_epoch(churn, attack);
            ok += report.success ? 1.0 : 0.0;
            spread = std::max(
                spread, static_cast<double>(report.max_dimension -
                                            report.min_dimension));
            splits += report.split_merge.splits;
            merges += report.split_merge.merges;
            disconnected += static_cast<double>(report.disconnected_rounds);
          }
          return std::vector<double>{
              ok, spread, splits, merges,
              static_cast<double>(overlay.size()), disconnected};
        },
        [&](const Scenario& scenario, const std::vector<double>& mean) {
          const int digits = ctx.reps > 1 ? 2 : 0;
          return std::vector<std::string>{
              support::Table::num(scenario.turnover, 3),
              support::Table::num(scenario.growth, 1),
              support::Table::num(mean[0], digits) + "/" +
                  support::Table::num(kEpochs),
              support::Table::num(mean[1], digits),
              support::Table::num(mean[2], digits),
              support::Table::num(mean[3], digits),
              support::Table::num(mean[4], digits),
              support::Table::num(mean[5], digits)};
        });
    ctx.show("combined_sweep", table);
    for (const auto& mean : means) {
      if (mean[5] > 0.0) {
        std::cerr << "\nnon-blocked nodes disconnected\n";
        return EXIT_FAILURE;
      }
    }
    ctx.interpret(
        "The dimension window never exceeds 2 (Lemma 18) even while the "
        "network grows or shrinks by tens of percent per epoch under a 30% "
        "blocking attack; splits fire under growth, merges under shrinkage, "
        "and no round disconnects the non-blocked nodes (Theorem 7).");
    return EXIT_SUCCESS;
  });
}
