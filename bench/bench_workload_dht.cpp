// Experiment W1 (DESIGN.md §12): sustained Zipfian read/write traffic on the
// RoBuSt-lite DHT while churn epochs, round-level DoS blocking, and an
// injected FaultPlan run concurrently — the production-shaped workload the
// paper's epoch model never measures. The sweep crosses key skew x arrival
// rate x churn cadence up to n = 10^5 and pairs each contended cell with the
// hot-key mitigation (threshold-triggered top-k replication + per-node
// caches) switched on, so the tail-latency effect of replication is read off
// the same seed.
//
// Extra flag: --smoke 1 truncates the sweep to its first cells (the cell
// list is prefix-stable, so per-cell seeds match the full run).
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "fault/plan.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "workload/adapters.hpp"
#include "workload/driver.hpp"

namespace {

using namespace reconfnet;

constexpr std::size_t kRounds = 192;
constexpr std::size_t kSmokeCells = 3;

struct Cell {
  std::size_t size = 4096;
  double theta = 0.0;
  double rate = 8.0;        ///< requests per serving round (open loop)
  std::size_t epoch = 0;    ///< churn epoch cadence (0 = never)
  bool faults = false;      ///< i.i.d. loss + delay on request/epoch legs
  bool mitigate = false;
};

std::string cell_label(const Cell& cell) {
  std::string label = "n=" + support::Table::num(cell.size) +
                      " theta=" + support::Table::num(cell.theta, 2) +
                      " rate=" + support::Table::num(cell.rate, 0);
  if (cell.epoch > 0) {
    label += " epoch=" + support::Table::num(cell.epoch);
  }
  if (cell.faults) label += " faults";
  label += cell.mitigate ? " mit" : " plain";
  return label;
}

workload::WorkloadReport run_cell(const Cell& cell,
                                  runtime::TrialContext& trial) {
  workload::DhtAdapterConfig adapter_config;
  adapter_config.size = cell.size;
  adapter_config.prefill_keys = cell.size;
  // Edge materialisation is Theta((n/d log n)^2 d) memory: off at scale.
  adapter_config.snapshot_edges = cell.size <= 16384;
  adapter_config.seed = trial.derive_seed();

  workload::DriverConfig config;
  config.rounds = kRounds;
  config.write_fraction = 0.05;
  config.keys.keyspace = cell.size;
  config.keys.theta = cell.theta;
  config.arrivals.rate = cell.rate;
  config.per_group_capacity = 2;
  config.epoch_every = cell.epoch;
  if (cell.faults) {
    config.faults = fault::FaultPlan{}.with_loss(0.01).with_delay(0.02, 2);
  }
  if (cell.mitigate) {
    config.mitigation.enabled = true;
    config.mitigation.top_k = 8;
    config.mitigation.replicate_threshold = 32;
    config.mitigation.cache_slots = 4;
    config.mitigation.cache_ttl = 16;
  }
  workload::DhtAdapter adapter(adapter_config);
  return workload::run_workload(config, adapter, trial.rng);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "W1_workload_dht",
      "W1: DHT tail latency under Zipfian load, churn, DoS, and faults",
      "Claim: the reconfigurable DHT sustains an open-loop Zipfian read/write "
      "mix through concurrent churn epochs and injected faults with exact "
      "request conservation, and threshold-triggered hot-key replication "
      "cuts the p999 tail under high skew."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    // Prefix-ordered sweep; --smoke keeps the first kSmokeCells cells with
    // identical flat trial indices (seed-compatible with the full run).
    std::vector<Cell> cells{
        // size   theta  rate  epoch  faults mitigate
        {4096, 0.00, 8.0, 0, false, false},   // uniform baseline
        {4096, 0.99, 8.0, 0, false, false},   // skew, below the knee
        {4096, 0.99, 8.0, 0, false, true},    //   + mitigation
        {4096, 0.99, 32.0, 0, false, false},  // skew past the hot-group knee
        {4096, 0.99, 32.0, 0, false, true},   //   + mitigation
        {4096, 0.99, 16.0, 32, false, false},  // churn epochs in the loop
        {4096, 0.99, 16.0, 32, false, true},   //   + mitigation
        {100000, 0.99, 256.0, 64, true, false},  // scale: churn + faults
        {100000, 0.99, 256.0, 64, true, true},   //   + mitigation
    };
    const bool smoke = ctx.args->has("smoke");
    if (smoke) cells.resize(kSmokeCells);

    support::Table table({"cell", "thru", "p50", "p99", "p999", "fail",
                          "queue", "repl", "hot hits"});
    const auto means = bench::sweep(
        ctx, table, cells,
        {"throughput", "p50", "p99", "p999", "completed", "failed", "retries",
         "max_queue", "replications", "hot_hits", "conserved"},
        cell_label,
        [&](const Cell& cell, runtime::TrialContext& trial) {
          const auto report = run_cell(cell, trial);
          const bool conserved =
              report.issued ==
              report.completed + report.failed + report.in_flight;
          const double hot_hits = static_cast<double>(
              report.mitigation.replica_hits + report.mitigation.cache_hits);
          return std::vector<double>{
              report.throughput,
              static_cast<double>(report.p50),
              static_cast<double>(report.p99),
              static_cast<double>(report.p999),
              static_cast<double>(report.completed),
              static_cast<double>(report.failed),
              static_cast<double>(report.retries),
              static_cast<double>(report.max_queue),
              static_cast<double>(report.mitigation.replications),
              hot_hits,
              conserved ? 1.0 : 0.0};
        },
        [&](const Cell& cell, const std::vector<double>& mean) {
          return std::vector<std::string>{
              cell_label(cell),
              support::Table::num(mean[0], 2),
              support::Table::num(mean[1], 0),
              support::Table::num(mean[2], 0),
              support::Table::num(mean[3], 0),
              support::Table::num(mean[5], 0),
              support::Table::num(mean[7], 0),
              support::Table::num(mean[8], 0),
              support::Table::num(mean[9], 0)};
        });
    ctx.show("dht_workload", table);

    // Request conservation is non-negotiable in every cell.
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (means[i][10] < 1.0) {
        std::cerr << "\nrequest conservation violated in cell "
                  << cell_label(cells[i]) << "\n";
        return EXIT_FAILURE;
      }
    }

    // Paired plain/mitigated cells: mitigation must cut the p999 tail in the
    // contended configurations (everything past the uniform baseline).
    bool mitigation_wins = true;
    for (std::size_t i = 0; i + 1 < cells.size(); ++i) {
      if (cells[i].mitigate || !cells[i + 1].mitigate) continue;
      if (cells[i].rate < 16.0) continue;  // below the knee the tail is flat
      const double plain_p999 = means[i][3];
      const double mitigated_p999 = means[i + 1][3];
      if (mitigated_p999 >= plain_p999) mitigation_wins = false;
      ctx.interpret(
          cell_label(cells[i]) + ": p999 " +
          support::Table::num(plain_p999, 0) + " -> " +
          support::Table::num(mitigated_p999, 0) +
          " rounds with hot-key replication (throughput " +
          support::Table::num(means[i][0], 2) + " -> " +
          support::Table::num(means[i + 1][0], 2) + "/round).");
    }
    if (!smoke && !mitigation_wins) {
      std::cerr << "\nhot-key mitigation failed to cut the p999 tail\n";
      return EXIT_FAILURE;
    }
    ctx.interpret(
        "Open-loop Zipfian load saturates the hot key's home group far below "
        "aggregate capacity; replicating the top-k keys across groups "
        "restores the tail while epochs and faults stay in the loop.");
    return EXIT_SUCCESS;
  });
}
