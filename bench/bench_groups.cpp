// Experiment F3 (Lemmas 16/17): group sizes concentrate around n/N, and
// under a (1/2-eps)-bounded attack that cannot see the fresh groups, every
// group keeps available representatives.
#include <cstdlib>
#include <iostream>

#include "adversary/dos.hpp"
#include "bench/common.hpp"
#include "dos/overlay.hpp"
#include "support/rng.hpp"

int main() {
  using namespace reconfnet;
  bench::banner("F3: group sizes and availability (Lemmas 16/17)",
                "Claim: (1-delta) n/N < |R(x)| < (1+delta) n/N w.h.p., and "
                "blocking any (1/2-eps) fraction leaves every group an "
                "available node when the groups are fresh.");

  std::cout << "Group size concentration after reorganizations:\n\n";
  support::Table sizes({"n", "N", "avg", "min", "max", "min/avg", "max/avg"});
  for (const std::size_t n : {512u, 1024u, 2048u, 4096u}) {
    dos::DosOverlay::Config config;
    config.size = n;
    config.group_c = 1.0;
    config.seed = bench::kBenchSeed + n;
    dos::DosOverlay overlay(config);
    std::size_t min_size = n;
    std::size_t max_size = 0;
    for (int epoch = 0; epoch < 3; ++epoch) {
      const auto report = overlay.run_epoch({});
      if (!report.success) continue;
      min_size = std::min(min_size, report.min_group_size);
      max_size = std::max(max_size, report.max_group_size);
    }
    const double avg = static_cast<double>(n) /
                       static_cast<double>(overlay.groups().supernodes());
    sizes.add_row(
        {support::Table::num(static_cast<std::uint64_t>(n)),
         support::Table::num(overlay.groups().supernodes()),
         support::Table::num(avg, 1),
         support::Table::num(static_cast<std::uint64_t>(min_size)),
         support::Table::num(static_cast<std::uint64_t>(max_size)),
         support::Table::num(static_cast<double>(min_size) / avg, 2),
         support::Table::num(static_cast<double>(max_size) / avg, 2)});
  }
  sizes.print(std::cout);

  std::cout << "\nAvailability under (1/2-eps)-bounded random blocking "
               "(n=1024, group_c=2, lateness >> 2t):\n\n";
  support::Table avail({"eps", "blocked_frac", "epochs_ok",
                        "min_avail_frac", "silenced_grp_rounds"});
  for (const double eps : {0.35, 0.25, 0.15, 0.05}) {
    dos::DosOverlay::Config config;
    config.size = 1024;
    config.group_c = 2.0;
    config.seed = bench::kBenchSeed + 77;
    dos::DosOverlay overlay(config);
    support::Rng rng(bench::kBenchSeed + static_cast<std::uint64_t>(eps * 100));
    adversary::RandomDos adversary(rng);
    dos::DosOverlay::Attack attack;
    attack.adversary = &adversary;
    attack.lateness = 1000;
    attack.blocked_fraction = 0.5 - eps;
    int ok = 0;
    double min_avail = 1.0;
    std::size_t silenced = 0;
    for (int epoch = 0; epoch < 4; ++epoch) {
      const auto report = overlay.run_epoch(attack);
      ok += report.success ? 1 : 0;
      min_avail = std::min(min_avail, report.min_available_fraction);
      silenced += report.silenced_group_rounds;
    }
    avail.add_row({support::Table::num(eps, 2),
                   support::Table::num(0.5 - eps, 2),
                   support::Table::num(ok) + "/4",
                   support::Table::num(min_avail, 3),
                   support::Table::num(static_cast<std::uint64_t>(silenced))});
  }
  avail.print(std::cout);
  bench::interpretation(
      "Group sizes concentrate within a small constant of n/N as n grows "
      "(Lemma 16). Even at 45% blocked per round, no group of the freshly "
      "randomized assignment is ever fully silenced (Lemma 17) — though the "
      "worst-case available fraction shrinks as eps -> 0, which is exactly "
      "why the constant c must grow with 1/eps.");
  return EXIT_SUCCESS;
}
