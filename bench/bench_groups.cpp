// Experiment F3 (Lemmas 16/17): group sizes concentrate around n/N, and
// under a (1/2-eps)-bounded attack that cannot see the fresh groups, every
// group keeps available representatives.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "adversary/dos.hpp"
#include "bench/common.hpp"
#include "dos/overlay.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "F3_groups", "F3: group sizes and availability (Lemmas 16/17)",
      "Claim: (1-delta) n/N < |R(x)| < (1+delta) n/N w.h.p., and blocking "
      "any (1/2-eps) fraction leaves every group an available node when the "
      "groups are fresh."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    std::cout << "Group size concentration after reorganizations:\n\n";
    support::Table sizes(
        {"n", "N", "avg", "min", "max", "min/avg", "max/avg"});
    const std::vector<std::size_t> sizes_cells{512, 1024, 2048, 4096};
    bench::sweep(
        ctx, sizes, sizes_cells,
        {"supernodes", "avg_group", "min_group", "max_group"},
        [](std::size_t n) { return "n=" + support::Table::num(
                                       static_cast<std::uint64_t>(n)); },
        [&](std::size_t n, runtime::TrialContext& trial) {
          dos::DosOverlay::Config config;
          config.size = n;
          config.group_c = 1.0;
          config.seed = trial.derive_seed();
          dos::DosOverlay overlay(config);
          std::size_t min_size = n;
          std::size_t max_size = 0;
          for (int epoch = 0; epoch < 3; ++epoch) {
            const auto report = overlay.run_epoch({});
            if (!report.success) continue;
            min_size = std::min(min_size, report.min_group_size);
            max_size = std::max(max_size, report.max_group_size);
          }
          return std::vector<double>{
              static_cast<double>(overlay.groups().supernodes()),
              static_cast<double>(n) /
                  static_cast<double>(overlay.groups().supernodes()),
              static_cast<double>(min_size), static_cast<double>(max_size)};
        },
        [&](std::size_t n, const std::vector<double>& mean) {
          return std::vector<std::string>{
              support::Table::num(static_cast<std::uint64_t>(n)),
              support::Table::num(mean[0], ctx.reps > 1 ? 1 : 0),
              support::Table::num(mean[1], 1),
              support::Table::num(mean[2], ctx.reps > 1 ? 1 : 0),
              support::Table::num(mean[3], ctx.reps > 1 ? 1 : 0),
              support::Table::num(mean[2] / mean[1], 2),
              support::Table::num(mean[3] / mean[1], 2)};
        });
    ctx.show("group_sizes", sizes);

    std::cout << "\nAvailability under (1/2-eps)-bounded random blocking "
                 "(n=1024, group_c=2, lateness >> 2t):\n\n";
    support::Table avail({"eps", "blocked_frac", "epochs_ok",
                          "min_avail_frac", "silenced_grp_rounds"});
    const std::vector<double> eps_cells{0.35, 0.25, 0.15, 0.05};
    bench::sweep(
        ctx, avail, eps_cells,
        {"epochs_ok", "min_available_fraction", "silenced_group_rounds"},
        [](double eps) { return "eps=" + support::Table::num(eps, 2); },
        [&](double eps, runtime::TrialContext& trial) {
          dos::DosOverlay::Config config;
          config.size = 1024;
          config.group_c = 2.0;
          config.seed = trial.derive_seed();
          dos::DosOverlay overlay(config);
          adversary::RandomDos adversary(trial.rng.split(1));
          dos::DosOverlay::Attack attack;
          attack.adversary = &adversary;
          attack.lateness = 1000;
          attack.blocked_fraction = 0.5 - eps;
          double ok = 0.0;
          double min_avail = 1.0;
          double silenced = 0.0;
          for (int epoch = 0; epoch < 4; ++epoch) {
            const auto report = overlay.run_epoch(attack);
            ok += report.success ? 1.0 : 0.0;
            min_avail = std::min(min_avail, report.min_available_fraction);
            silenced += static_cast<double>(report.silenced_group_rounds);
          }
          return std::vector<double>{ok, min_avail, silenced};
        },
        [&](double eps, const std::vector<double>& mean) {
          return std::vector<std::string>{
              support::Table::num(eps, 2),
              support::Table::num(0.5 - eps, 2),
              support::Table::num(mean[0], ctx.reps > 1 ? 2 : 0) + "/4",
              support::Table::num(mean[1], 3),
              support::Table::num(mean[2], ctx.reps > 1 ? 1 : 0)};
        });
    ctx.show("availability", avail);
    ctx.interpret(
        "Group sizes concentrate within a small constant of n/N as n grows "
        "(Lemma 16). Even at 45% blocked per round, no group of the freshly "
        "randomized assignment is ever fully silenced (Lemma 17) — though "
        "the worst-case available fraction shrinks as eps -> 0, which is "
        "exactly why the constant c must grow with 1/eps.");
    return EXIT_SUCCESS;
  });
}
