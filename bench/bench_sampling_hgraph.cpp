// Experiment T1 (Theorem 2): Algorithm 1 on H-graphs — success w.h.p. with
// the Lemma 7 schedule, O(log log n) rounds, >= beta log n samples per node,
// and per-node per-round communication work O(log^{2+log(2+eps)} n).
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "graph/hgraph.hpp"
#include "sampling/hgraph_sampler.hpp"
#include "sampling/schedule.hpp"
#include "support/rng.hpp"

namespace {

struct Cell {
  std::size_t n;
  double epsilon;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "T1_sampling_hgraph", "T1: Algorithm 1 on H-graphs (Theorem 2)",
      "Claim: with m_i = (2+eps)^{T-i} c log n the algorithm succeeds "
      "w.h.p., runs O(log log n) rounds and uses polylog communication work "
      "per node per round."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    support::Table table({"n", "eps", "c", "runs_ok", "rounds",
                          "samples/node", "max_kbits/nd/rd", "dry_events"});
    constexpr int kRuns = 3;
    std::vector<Cell> cells;
    for (const std::size_t n : {256u, 1024u, 2048u}) {
      for (const double epsilon : {0.5, 1.0}) cells.push_back({n, epsilon});
    }
    bench::sweep(
        ctx, table, cells,
        {"runs_ok", "rounds", "samples_per_node", "max_kbits_per_node_round",
         "dry_events"},
        [](const Cell& cell) {
          return "n=" +
                 support::Table::num(static_cast<std::uint64_t>(cell.n)) +
                 ",eps=" + support::Table::num(cell.epsilon, 2);
        },
        [&](const Cell& cell, runtime::TrialContext& trial) {
          // Lemma 7/9 couple c to eps: the smaller the schedule slack, the
          // larger the constant must be for the Chernoff margin to hold.
          const double c_for_eps = cell.epsilon < 0.75 ? 8.0 : 2.0;
          const auto estimate = sampling::SizeEstimate::from_true_size(cell.n);
          sampling::SamplingConfig config;
          config.epsilon = cell.epsilon;
          config.c = c_for_eps;
          const auto schedule = sampling::hgraph_schedule(estimate, 8, config);
          auto graph_rng = trial.rng.split(0);
          const auto g = graph::HGraph::random(cell.n, 8, graph_rng);

          double ok = 0.0;
          double rounds = 0.0;
          double max_kbits = 0.0;
          double dry = 0.0;
          double samples = 0.0;
          for (int run = 0; run < kRuns; ++run) {
            auto run_rng =
                trial.rng.split(1 + static_cast<std::uint64_t>(run));
            const auto result =
                sampling::run_hgraph_sampling(g, schedule, run_rng);
            ok += result.success ? 1.0 : 0.0;
            rounds = static_cast<double>(result.rounds);
            max_kbits = std::max(
                max_kbits,
                static_cast<double>(result.max_node_bits_per_round) / 1000.0);
            dry += static_cast<double>(result.dry_events);
            samples = static_cast<double>(result.samples.front().size());
          }
          return std::vector<double>{ok, rounds, samples, max_kbits, dry};
        },
        [&](const Cell& cell, const std::vector<double>& mean) {
          const int digits = ctx.reps > 1 ? 1 : 0;
          return std::vector<std::string>{
              support::Table::num(static_cast<std::uint64_t>(cell.n)),
              support::Table::num(cell.epsilon, 2),
              support::Table::num(cell.epsilon < 0.75 ? 8.0 : 2.0, 1),
              support::Table::num(mean[0], digits) + "/" +
                  support::Table::num(kRuns),
              support::Table::num(mean[1], digits),
              support::Table::num(mean[2], digits),
              support::Table::num(mean[3], 1),
              support::Table::num(mean[4], digits)};
        });
    ctx.show("hgraph_sampling", table);
    ctx.interpret(
        "All runs succeed (no multiset ever runs dry), round counts step up "
        "with log log n, and the per-node work grows polylogarithmically — "
        "the eps/c trade-off of Lemma 7 is visible in the work column.");
    return EXIT_SUCCESS;
  });
}
