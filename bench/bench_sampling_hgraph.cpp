// Experiment T1 (Theorem 2): Algorithm 1 on H-graphs — success w.h.p. with
// the Lemma 7 schedule, O(log log n) rounds, >= beta log n samples per node,
// and per-node per-round communication work O(log^{2+log(2+eps)} n).
#include <cstdlib>
#include <iostream>

#include "bench/common.hpp"
#include "graph/hgraph.hpp"
#include "sampling/hgraph_sampler.hpp"
#include "sampling/schedule.hpp"
#include "support/rng.hpp"

int main() {
  using namespace reconfnet;
  bench::banner("T1: Algorithm 1 on H-graphs (Theorem 2)",
                "Claim: with m_i = (2+eps)^{T-i} c log n the algorithm "
                "succeeds w.h.p., runs O(log log n) rounds and uses polylog "
                "communication work per node per round.");

  support::Table table({"n", "eps", "c", "runs_ok", "rounds", "samples/node",
                        "max_kbits/nd/rd", "dry_events"});
  support::Rng rng(bench::kBenchSeed + 1);
  constexpr int kRuns = 3;

  for (const std::size_t n : {256u, 1024u, 2048u}) {
    for (const double epsilon : {0.5, 1.0}) {
      // Lemma 7/9 couple c to eps: the smaller the schedule slack, the
      // larger the constant must be for the Chernoff margin to hold.
      const double c_for_eps = epsilon < 0.75 ? 8.0 : 2.0;
      const auto estimate = sampling::SizeEstimate::from_true_size(n);
      sampling::SamplingConfig config;
      config.epsilon = epsilon;
      config.c = c_for_eps;
      const auto schedule = sampling::hgraph_schedule(estimate, 8, config);
      const auto g = graph::HGraph::random(n, 8, rng);

      int ok = 0;
      sim::Round rounds = 0;
      std::uint64_t max_bits = 0;
      std::size_t dry = 0;
      std::size_t samples = 0;
      for (int run = 0; run < kRuns; ++run) {
        auto run_rng = rng.split(static_cast<std::uint64_t>(run));
        const auto result =
            sampling::run_hgraph_sampling(g, schedule, run_rng);
        ok += result.success ? 1 : 0;
        rounds = result.rounds;
        max_bits = std::max(max_bits, result.max_node_bits_per_round);
        dry += result.dry_events;
        samples = result.samples.front().size();
      }
      table.add_row({support::Table::num(static_cast<std::uint64_t>(n)),
                     support::Table::num(epsilon, 2),
                     support::Table::num(c_for_eps, 1),
                     support::Table::num(ok) + "/" +
                         support::Table::num(kRuns),
                     support::Table::num(rounds),
                     support::Table::num(static_cast<std::uint64_t>(samples)),
                     support::Table::num(
                         static_cast<double>(max_bits) / 1000.0, 1),
                     support::Table::num(static_cast<std::uint64_t>(dry))});
    }
  }
  table.print(std::cout);
  bench::interpretation(
      "All runs succeed (no multiset ever runs dry), round counts step up "
      "with log log n, and the per-node work grows polylogarithmically — "
      "the eps/c trade-off of Lemma 7 is visible in the work column.");
  return EXIT_SUCCESS;
}
