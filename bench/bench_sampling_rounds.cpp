// Experiment F1 (headline): rapid node sampling needs Theta(log log n)
// communication rounds where plain random walks need Theta(log n) — an
// exponential gap (Theorems 2/3 vs. Section 2.3).
#include <cstdlib>
#include <iostream>

#include "bench/common.hpp"
#include "graph/hgraph.hpp"
#include "graph/hypercube.hpp"
#include "sampling/hgraph_sampler.hpp"
#include "sampling/hypercube_sampler.hpp"
#include "sampling/plain_walk.hpp"
#include "sampling/schedule.hpp"
#include "support/rng.hpp"

int main() {
  using namespace reconfnet;
  bench::banner("F1: sampling rounds, rapid vs plain walks",
                "Claim: O(log log n) rounds (pointer-doubled walks) vs "
                "Theta(log n) rounds (plain walks), both delivering "
                "(almost) uniform samples.");

  support::Table table({"n", "hg_rapid", "hg_plain", "hc_rapid", "hc_plain",
                        "speedup_hg", "speedup_hc"});
  support::Rng rng(bench::kBenchSeed);

  for (int log_n = 8; log_n <= 11; ++log_n) {
    const std::size_t n = std::size_t{1} << log_n;
    const auto estimate = sampling::SizeEstimate::from_true_size(n);
    sampling::SamplingConfig config;
    config.c = 2.0;  // the Lemma 7/9 constant, per ablation A2

    // H-graph: rapid vs Lemma 2 walk length.
    const auto g = graph::HGraph::random(n, 8, rng);
    const auto schedule = sampling::hgraph_schedule(estimate, 8, config);
    auto rapid_rng = rng.split(1);
    const auto rapid = sampling::run_hgraph_sampling(g, schedule, rapid_rng);
    const auto walk_length = sampling::hgraph_mixing_walk_length(n, 8, 1.0);
    auto plain_rng = rng.split(2);
    const auto plain =
        sampling::run_hgraph_plain_walks(g, 1, walk_length, plain_rng);

    // Hypercube: rapid vs the classic d-round coin-flip walk.
    const graph::Hypercube cube(log_n);
    const auto cube_schedule =
        sampling::hypercube_schedule(estimate, log_n, config);
    auto cube_rng = rng.split(3);
    const auto cube_rapid =
        sampling::run_hypercube_sampling(cube, cube_schedule, cube_rng);
    auto cube_plain_rng = rng.split(4);
    const auto cube_plain =
        sampling::run_hypercube_plain_walks(cube, 1, cube_plain_rng);

    if (!rapid.success || !cube_rapid.success) {
      std::cerr << "sampling ran dry at n=" << n << "\n";
      return EXIT_FAILURE;
    }
    table.add_row(
        {support::Table::num(static_cast<std::uint64_t>(n)),
         support::Table::num(rapid.rounds),
         support::Table::num(plain.rounds),
         support::Table::num(cube_rapid.rounds),
         support::Table::num(cube_plain.rounds),
         support::Table::num(static_cast<double>(plain.rounds) /
                                 static_cast<double>(rapid.rounds),
                             2),
         support::Table::num(static_cast<double>(cube_plain.rounds) /
                                 static_cast<double>(cube_rapid.rounds),
                             2)});
  }
  table.print(std::cout);
  bench::interpretation(
      "Rapid round counts grow ~ log log n (doubling iterations) while plain "
      "walks grow ~ log n; the speedup widens with n, matching the paper's "
      "exponential-improvement claim.");
  return EXIT_SUCCESS;
}
