// Experiment F1 (headline): rapid node sampling needs Theta(log log n)
// communication rounds where plain random walks need Theta(log n) — an
// exponential gap (Theorems 2/3 vs. Section 2.3).
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "graph/hgraph.hpp"
#include "graph/hypercube.hpp"
#include "sampling/hgraph_sampler.hpp"
#include "sampling/hypercube_sampler.hpp"
#include "sampling/plain_walk.hpp"
#include "sampling/schedule.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "F1_sampling_rounds", "F1: sampling rounds, rapid vs plain walks",
      "Claim: O(log log n) rounds (pointer-doubled walks) vs Theta(log n) "
      "rounds (plain walks), both delivering (almost) uniform samples."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    support::Table table({"n", "hg_rapid", "hg_plain", "hc_rapid", "hc_plain",
                          "speedup_hg", "speedup_hc"});
    const std::vector<int> cells{8, 9, 10, 11};
    const auto means = bench::sweep(
        ctx, table, cells,
        {"hg_rapid_rounds", "hg_plain_rounds", "hc_rapid_rounds",
         "hc_plain_rounds", "rapid_ok"},
        [](int log_n) {
          return "n=" + support::Table::num(std::uint64_t{1} << log_n);
        },
        [&](int log_n, runtime::TrialContext& trial) {
          const std::size_t n = std::size_t{1} << log_n;
          const auto estimate = sampling::SizeEstimate::from_true_size(n);
          sampling::SamplingConfig config;
          config.c = 2.0;  // the Lemma 7/9 constant, per ablation A2

          // H-graph: rapid vs Lemma 2 walk length.
          auto graph_rng = trial.rng.split(0);
          const auto g = graph::HGraph::random(n, 8, graph_rng);
          const auto schedule = sampling::hgraph_schedule(estimate, 8, config);
          auto rapid_rng = trial.rng.split(1);
          const auto rapid =
              sampling::run_hgraph_sampling(g, schedule, rapid_rng);
          const auto walk_length =
              sampling::hgraph_mixing_walk_length(n, 8, 1.0);
          auto plain_rng = trial.rng.split(2);
          const auto plain =
              sampling::run_hgraph_plain_walks(g, 1, walk_length, plain_rng);

          // Hypercube: rapid vs the classic d-round coin-flip walk.
          const graph::Hypercube cube(log_n);
          const auto cube_schedule =
              sampling::hypercube_schedule(estimate, log_n, config);
          auto cube_rng = trial.rng.split(3);
          const auto cube_rapid =
              sampling::run_hypercube_sampling(cube, cube_schedule, cube_rng);
          auto cube_plain_rng = trial.rng.split(4);
          const auto cube_plain =
              sampling::run_hypercube_plain_walks(cube, 1, cube_plain_rng);

          return std::vector<double>{
              static_cast<double>(rapid.rounds),
              static_cast<double>(plain.rounds),
              static_cast<double>(cube_rapid.rounds),
              static_cast<double>(cube_plain.rounds),
              rapid.success && cube_rapid.success ? 1.0 : 0.0};
        },
        [&](int log_n, const std::vector<double>& mean) {
          const int digits = ctx.reps > 1 ? 1 : 0;
          return std::vector<std::string>{
              support::Table::num(std::uint64_t{1} << log_n),
              support::Table::num(mean[0], digits),
              support::Table::num(mean[1], digits),
              support::Table::num(mean[2], digits),
              support::Table::num(mean[3], digits),
              support::Table::num(mean[1] / mean[0], 2),
              support::Table::num(mean[3] / mean[2], 2)};
        });
    ctx.show("rounds_vs_n", table);
    for (const auto& mean : means) {
      if (mean[4] < 1.0) {
        std::cerr << "sampling ran dry\n";
        return EXIT_FAILURE;
      }
    }
    ctx.interpret(
        "Rapid round counts grow ~ log log n (doubling iterations) while "
        "plain walks grow ~ log n; the speedup widens with n, matching the "
        "paper's exponential-improvement claim.");
    return EXIT_SUCCESS;
  });
}
