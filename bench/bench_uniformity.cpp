// Experiment T3 (Lemmas 2/3): the sampling distributions, measured
// *per origin*. Aggregating over all origins would be uniform for any walk
// length by symmetry (the transition matrix is doubly stochastic), so the
// meaningful quantity is the distribution of one node's samples: Lemma 2
// bounds its deviation from uniform by n^-alpha once walks reach
// ceil(2 alpha log_{d/4} n).
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <vector>

#include "bench/common.hpp"
#include "graph/hgraph.hpp"
#include "graph/hypercube.hpp"
#include "sampling/hgraph_sampler.hpp"
#include "sampling/hypercube_sampler.hpp"
#include "sampling/schedule.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace {

using namespace reconfnet;

/// Counts node 0's samples over `runs` independent executions.
template <typename RunFn>
std::vector<std::uint64_t> origin_counts(std::size_t n, int runs,
                                         support::Rng& rng, RunFn run_fn) {
  std::vector<std::uint64_t> counts(n, 0);
  for (int run = 0; run < runs; ++run) {
    auto run_rng = rng.split(static_cast<std::uint64_t>(run));
    for (auto sample : run_fn(run_rng)) {
      ++counts[static_cast<std::size_t>(sample)];
    }
  }
  return counts;
}

}  // namespace

int main() {
  bench::banner(
      "T3: per-origin sampling distribution (Lemmas 2/3)",
      "Claim: one node's H-graph samples deviate from uniform by at most "
      "n^-alpha per target once walks reach the Lemma 2 length; short walks "
      "are visibly biased. Hypercube sampling is exactly uniform.");

  support::Rng rng(bench::kBenchSeed + 3);
  const std::size_t n = 128;
  const auto g = graph::HGraph::random(n, 8, rng);
  constexpr int kRuns = 60;

  support::Table table(
      {"graph", "alpha", "walk_len", "samples", "tv_dist", "chi2_p"});
  for (const double alpha : {0.25, 0.5, 1.0, 2.0}) {
    const auto estimate = sampling::SizeEstimate::from_true_size(n);
    sampling::SamplingConfig config;
    config.alpha = alpha;
    config.c = 4.0;
    const auto schedule = sampling::hgraph_schedule(estimate, 8, config);
    auto sweep_rng = rng.split(static_cast<std::uint64_t>(alpha * 100));
    const auto counts =
        origin_counts(n, kRuns, sweep_rng, [&](support::Rng& run_rng) {
          return sampling::run_hgraph_sampling(g, schedule, run_rng)
              .samples.front();
        });
    table.add_row(
        {"hgraph", support::Table::num(alpha, 2),
         support::Table::num(
             static_cast<std::uint64_t>(schedule.target_walk_length)),
         support::Table::num(static_cast<std::uint64_t>(std::accumulate(
             counts.begin(), counts.end(), std::uint64_t{0}))),
         support::Table::num(support::tv_distance_from_uniform(counts), 4),
         support::Table::num(support::chi_square_uniform(counts).p_value,
                             4)});
  }

  // Hypercube reference: exactly uniform per origin by construction.
  {
    const graph::Hypercube cube(7);
    const auto estimate = sampling::SizeEstimate::from_true_size(cube.size());
    sampling::SamplingConfig config;
    config.c = 4.0;
    const auto schedule = sampling::hypercube_schedule(estimate, 7, config);
    auto sweep_rng = rng.split(999);
    const auto counts = origin_counts(
        cube.size(), kRuns, sweep_rng, [&](support::Rng& run_rng) {
          return sampling::run_hypercube_sampling(cube, schedule, run_rng)
              .samples.front();
        });
    table.add_row(
        {"hypercube", "-", "7",
         support::Table::num(static_cast<std::uint64_t>(std::accumulate(
             counts.begin(), counts.end(), std::uint64_t{0}))),
         support::Table::num(support::tv_distance_from_uniform(counts), 4),
         support::Table::num(support::chi_square_uniform(counts).p_value,
                             4)});
  }
  table.print(std::cout);
  bench::interpretation(
      "Walks of length 4 (alpha = 0.25) are still concentrated near the "
      "origin — large TV, chi-square p ~ 0. At the Lemma 2 length "
      "(alpha >= 1) the per-origin distribution becomes statistically "
      "indistinguishable from uniform, and the hypercube primitive matches "
      "its exact-uniformity guarantee at any length.");
  return EXIT_SUCCESS;
}
