// Experiment T3 (Lemmas 2/3): the sampling distributions, measured
// *per origin*. Aggregating over all origins would be uniform for any walk
// length by symmetry (the transition matrix is doubly stochastic), so the
// meaningful quantity is the distribution of one node's samples: Lemma 2
// bounds its deviation from uniform by n^-alpha once walks reach
// ceil(2 alpha log_{d/4} n).
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <vector>

#include "bench/common.hpp"
#include "graph/hgraph.hpp"
#include "graph/hypercube.hpp"
#include "sampling/hgraph_sampler.hpp"
#include "sampling/hypercube_sampler.hpp"
#include "sampling/schedule.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace {

using namespace reconfnet;

/// Counts node 0's samples over `runs` independent executions.
template <typename RunFn>
std::vector<std::uint64_t> origin_counts(std::size_t n, int runs,
                                         support::Rng& rng, RunFn run_fn) {
  std::vector<std::uint64_t> counts(n, 0);
  for (int run = 0; run < runs; ++run) {
    auto run_rng = rng.split(static_cast<std::uint64_t>(run));
    for (auto sample : run_fn(run_rng)) {
      ++counts[static_cast<std::size_t>(sample)];
    }
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchSpec spec{
      "T3_uniformity", "T3: per-origin sampling distribution (Lemmas 2/3)",
      "Claim: one node's H-graph samples deviate from uniform by at most "
      "n^-alpha per target once walks reach the Lemma 2 length; short walks "
      "are visibly biased. Hypercube sampling is exactly uniform."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    const std::size_t n = 128;
    constexpr int kRuns = 60;
    support::Table table(
        {"graph", "alpha", "walk_len", "samples", "tv_dist", "chi2_p"});

    // alpha < 0 marks the exactly-uniform hypercube reference cell.
    const std::vector<double> cells{0.25, 0.5, 1.0, 2.0, -1.0};
    bench::sweep(
        ctx, table, cells, {"walk_len", "samples", "tv_dist", "chi2_p"},
        [](double alpha) {
          return alpha < 0.0 ? std::string("hypercube")
                             : "alpha=" + support::Table::num(alpha, 2);
        },
        [&](double alpha, runtime::TrialContext& trial) {
          if (alpha < 0.0) {
            const graph::Hypercube cube(7);
            const auto estimate =
                sampling::SizeEstimate::from_true_size(cube.size());
            sampling::SamplingConfig config;
            config.c = 4.0;
            const auto schedule =
                sampling::hypercube_schedule(estimate, 7, config);
            const auto counts = origin_counts(
                cube.size(), kRuns, trial.rng, [&](support::Rng& run_rng) {
                  return sampling::run_hypercube_sampling(cube, schedule,
                                                          run_rng)
                      .samples.front();
                });
            return std::vector<double>{
                7.0,
                static_cast<double>(std::accumulate(
                    counts.begin(), counts.end(), std::uint64_t{0})),
                support::tv_distance_from_uniform(counts),
                support::chi_square_uniform(counts).p_value};
          }
          auto graph_rng = trial.rng.split(0);
          const auto g = graph::HGraph::random(n, 8, graph_rng);
          const auto estimate = sampling::SizeEstimate::from_true_size(n);
          sampling::SamplingConfig config;
          config.alpha = alpha;
          config.c = 4.0;
          const auto schedule = sampling::hgraph_schedule(estimate, 8, config);
          auto sweep_rng = trial.rng.split(1);
          const auto counts =
              origin_counts(n, kRuns, sweep_rng, [&](support::Rng& run_rng) {
                return sampling::run_hgraph_sampling(g, schedule, run_rng)
                    .samples.front();
              });
          return std::vector<double>{
              static_cast<double>(schedule.target_walk_length),
              static_cast<double>(std::accumulate(
                  counts.begin(), counts.end(), std::uint64_t{0})),
              support::tv_distance_from_uniform(counts),
              support::chi_square_uniform(counts).p_value};
        },
        [&](double alpha, const std::vector<double>& mean) {
          const int digits = ctx.reps > 1 ? 1 : 0;
          return std::vector<std::string>{
              alpha < 0.0 ? "hypercube" : "hgraph",
              alpha < 0.0 ? "-" : support::Table::num(alpha, 2),
              support::Table::num(mean[0], digits),
              support::Table::num(mean[1], digits),
              support::Table::num(mean[2], 4),
              support::Table::num(mean[3], 4)};
        });
    ctx.show("per_origin_distribution", table);
    ctx.interpret(
        "Walks of length 4 (alpha = 0.25) are still concentrated near the "
        "origin — large TV, chi-square p ~ 0. At the Lemma 2 length "
        "(alpha >= 1) the per-origin distribution becomes statistically "
        "indistinguishable from uniform, and the hypercube primitive matches "
        "its exact-uniformity guarantee at any length.");
    return EXIT_SUCCESS;
  });
}
