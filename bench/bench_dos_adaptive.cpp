// Experiment A5: the adaptive group-learning adversary. AdaptiveDos watches
// its own blocked-set feedback — did the groups it wiped last time survive
// until the next stale snapshot? — and folds the answer into a persistence
// estimate that gates how much budget goes into targeted group wipes versus
// blind random blocking. Against a static overlay persistence converges to 1
// and the attack stays fully targeted; against the reconfiguring overlay with
// lateness >= one epoch the attacked groups dissolve before they can be
// re-observed, persistence decays, and the learning adversary does no better
// than RandomDos at the same budget.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "adversary/dos.hpp"
#include "bench/common.hpp"
#include "dos/overlay.hpp"
#include "support/rng.hpp"

namespace {

using namespace reconfnet;

dos::DosOverlay::Config make_config(std::uint64_t seed) {
  dos::DosOverlay::Config config;
  config.size = 1024;
  config.group_c = 2.0;
  config.seed = seed;
  return config;
}

struct Cell {
  std::string strategy;  // "adaptive" or "random"
  int lateness = 0;
};

// Sentinel for "persistence is not a thing this strategy tracks".
constexpr double kNoPersistence = -1.0;

std::string persistence_cell(double value, int precision) {
  return value < 0.0 ? "-" : support::Table::num(value, precision);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "A5_dos_adaptive",
      "A5: adaptive group-learning DoS vs random blocking at equal budget",
      "Claim: an adversary that learns group persistence from its own "
      "blocked-set feedback gains nothing over random blocking against the "
      "reconfiguring overlay once its information is an epoch late, while "
      "the same learner converges to persistence 1 and stays fully targeted "
      "against a static overlay."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    constexpr double kBlockedFraction = 0.35;
    constexpr int kEpochs = 4;

    std::vector<Cell> cells;
    for (const std::string strategy : {"adaptive", "random"}) {
      for (const int lateness : {0, 16, 32}) {
        cells.push_back({strategy, lateness});
      }
    }

    support::Table table({"adversary", "lateness", "epochs_ok",
                          "silenced_grp_rounds", "disconnected_rounds",
                          "min_avail", "persistence"});
    bench::sweep(
        ctx, table, cells,
        {"epochs_ok", "silenced_group_rounds", "disconnected_rounds",
         "min_available_fraction", "final_persistence"},
        [](const Cell& cell) {
          return cell.strategy + "/lateness=" +
                 support::Table::num(cell.lateness);
        },
        [&](const Cell& cell, runtime::TrialContext& trial) {
          dos::DosOverlay overlay(make_config(trial.derive_seed()));
          adversary::AdaptiveDos adaptive(trial.rng.split(1));
          adversary::RandomDos random(trial.rng.split(2));
          dos::DosOverlay::Attack attack;
          attack.adversary = cell.strategy == "adaptive"
                                 ? static_cast<adversary::DosAdversary*>(
                                       &adaptive)
                                 : &random;
          attack.lateness = cell.lateness;
          attack.blocked_fraction = kBlockedFraction;
          double ok = 0.0;
          double silenced = 0.0;
          double disconnected = 0.0;
          double min_avail = 1.0;
          for (int epoch = 0; epoch < kEpochs; ++epoch) {
            const auto report = overlay.run_epoch(attack);
            ok += report.success ? 1.0 : 0.0;
            silenced += static_cast<double>(report.silenced_group_rounds);
            disconnected += static_cast<double>(report.disconnected_rounds);
            min_avail = std::min(min_avail, report.min_available_fraction);
          }
          const double persistence = cell.strategy == "adaptive"
                                         ? adaptive.persistence()
                                         : kNoPersistence;
          return std::vector<double>{ok, silenced, disconnected, min_avail,
                                     persistence};
        },
        [&](const Cell& cell, const std::vector<double>& mean) {
          return std::vector<std::string>{
              cell.strategy, support::Table::num(cell.lateness),
              support::Table::num(mean[0], ctx.reps > 1 ? 2 : 0) + "/" +
                  support::Table::num(kEpochs),
              support::Table::num(mean[1], ctx.reps > 1 ? 1 : 0),
              support::Table::num(mean[2], ctx.reps > 1 ? 1 : 0),
              support::Table::num(mean[3], 3),
              persistence_cell(mean[4], 2)};
        });
    ctx.show("adaptive_sweep", table);

    std::cout << "\nBaseline: static overlay (no reconfiguration), 80 rounds, "
                 "lateness 32 — stale information stays accurate forever, so "
                 "the learner's persistence estimate converges to 1:\n\n";
    support::Table baseline({"adversary", "silenced_grp_rounds",
                             "disconnected_rounds", "min_avail", "survived",
                             "persistence"});
    const std::vector<Cell> static_cells{{"adaptive", 32}, {"random", 32}};
    bench::sweep(
        ctx, baseline, static_cells,
        {"silenced_group_rounds", "disconnected_rounds",
         "min_available_fraction", "survived", "final_persistence"},
        [](const Cell& cell) { return "static/" + cell.strategy; },
        [&](const Cell& cell, runtime::TrialContext& trial) {
          dos::DosOverlay overlay(make_config(trial.derive_seed()));
          adversary::AdaptiveDos adaptive(trial.rng.split(1));
          adversary::RandomDos random(trial.rng.split(2));
          dos::DosOverlay::Attack attack;
          attack.adversary = cell.strategy == "adaptive"
                                 ? static_cast<adversary::DosAdversary*>(
                                       &adaptive)
                                 : &random;
          attack.lateness = cell.lateness;
          attack.blocked_fraction = kBlockedFraction;
          const auto report = overlay.run_static(attack, 80);
          const double persistence = cell.strategy == "adaptive"
                                         ? adaptive.persistence()
                                         : kNoPersistence;
          return std::vector<double>{
              static_cast<double>(report.silenced_group_rounds),
              static_cast<double>(report.disconnected_rounds),
              report.min_available_fraction, report.success ? 1.0 : 0.0,
              persistence};
        },
        [&](const Cell& cell, const std::vector<double>& mean) {
          return std::vector<std::string>{
              cell.strategy, support::Table::num(mean[0], ctx.reps > 1 ? 1 : 0),
              support::Table::num(mean[1], ctx.reps > 1 ? 1 : 0),
              support::Table::num(mean[2], 3), mean[3] >= 1.0 ? "yes" : "NO",
              persistence_cell(mean[4], 2)};
        });
    baseline.print(std::cout);
    ctx.results->add_table("static_baseline", baseline);
    ctx.interpret(
        "Learning needs persistence to pay off. On the static overlay the "
        "adaptive adversary's feedback loop confirms every attacked group "
        "still exists (persistence -> 1), the full budget stays in targeted "
        "group wipes, and it damages the overlay at least as badly as random "
        "blocking. On the reconfiguring overlay with lateness >= one epoch, "
        "each group it attacks has been reshuffled before the next stale "
        "snapshot can confirm the hit, persistence decays geometrically, and "
        "its outcome converges to RandomDos at the same budget — the "
        "Section 5 guarantee holds even against an adversary that adapts, "
        "because the only feedback channel it has is itself t rounds late.");
    return EXIT_SUCCESS;
  });
}
