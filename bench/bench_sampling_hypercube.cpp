// Experiment T2 (Theorem 3): Algorithm 2 on hypercubes — exact uniform
// samples in O(log log n) rounds with the Lemma 9 schedule.
#include <cstdlib>
#include <iostream>

#include "bench/common.hpp"
#include "graph/hypercube.hpp"
#include "sampling/hypercube_sampler.hpp"
#include "sampling/schedule.hpp"
#include "support/rng.hpp"

int main() {
  using namespace reconfnet;
  bench::banner("T2: Algorithm 2 on hypercubes (Theorem 3)",
                "Claim: with m_i = (1+eps)^{I-i} c log n the coordinate-block "
                "doubling succeeds w.h.p. and samples exactly uniformly in "
                "O(log log n) rounds.");

  support::Table table({"d", "n", "eps", "c", "runs_ok", "rounds", "samples/node",
                        "max_kbits/nd/rd", "dry_events"});
  support::Rng rng(bench::kBenchSeed + 2);
  constexpr int kRuns = 3;

  for (const int d : {6, 8, 10}) {
    for (const double epsilon : {0.5, 1.0}) {
      // Lemma 7/9 couple c to eps: the smaller the schedule slack, the
      // larger the constant must be for the Chernoff margin to hold.
      const double c_for_eps = epsilon < 0.75 ? 8.0 : 2.0;
      const std::size_t n = std::size_t{1} << d;
      const auto estimate = sampling::SizeEstimate::from_true_size(n);
      sampling::SamplingConfig config;
      config.epsilon = epsilon;
      config.c = c_for_eps;
      const auto schedule = sampling::hypercube_schedule(estimate, d, config);
      const graph::Hypercube cube(d);

      int ok = 0;
      sim::Round rounds = 0;
      std::uint64_t max_bits = 0;
      std::size_t dry = 0;
      std::size_t samples = 0;
      for (int run = 0; run < kRuns; ++run) {
        auto run_rng = rng.split(static_cast<std::uint64_t>(run));
        const auto result =
            sampling::run_hypercube_sampling(cube, schedule, run_rng);
        ok += result.success ? 1 : 0;
        rounds = result.rounds;
        max_bits = std::max(max_bits, result.max_node_bits_per_round);
        dry += result.dry_events;
        samples = result.samples.front().size();
      }
      table.add_row({support::Table::num(d),
                     support::Table::num(static_cast<std::uint64_t>(n)),
                     support::Table::num(epsilon, 2),
                     support::Table::num(c_for_eps, 1),
                     support::Table::num(ok) + "/" +
                         support::Table::num(kRuns),
                     support::Table::num(rounds),
                     support::Table::num(static_cast<std::uint64_t>(samples)),
                     support::Table::num(
                         static_cast<double>(max_bits) / 1000.0, 1),
                     support::Table::num(static_cast<std::uint64_t>(dry))});
    }
  }
  table.print(std::cout);
  bench::interpretation(
      "Rounds equal 2*ceil(log2 d) — doubling the dimension adds only two "
      "rounds — and the work per node stays polylogarithmic.");
  return EXIT_SUCCESS;
}
