// Experiment T2 (Theorem 3): Algorithm 2 on hypercubes — exact uniform
// samples in O(log log n) rounds with the Lemma 9 schedule.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "graph/hypercube.hpp"
#include "sampling/hypercube_sampler.hpp"
#include "sampling/schedule.hpp"
#include "support/rng.hpp"

namespace {

struct Cell {
  int d;
  double epsilon;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "T2_sampling_hypercube", "T2: Algorithm 2 on hypercubes (Theorem 3)",
      "Claim: with m_i = (1+eps)^{I-i} c log n the coordinate-block doubling "
      "succeeds w.h.p. and samples exactly uniformly in O(log log n) "
      "rounds."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    support::Table table({"d", "n", "eps", "c", "runs_ok", "rounds",
                          "samples/node", "max_kbits/nd/rd", "dry_events"});
    constexpr int kRuns = 3;
    std::vector<Cell> cells;
    for (const int d : {6, 8, 10}) {
      for (const double epsilon : {0.5, 1.0}) cells.push_back({d, epsilon});
    }
    bench::sweep(
        ctx, table, cells,
        {"runs_ok", "rounds", "samples_per_node", "max_kbits_per_node_round",
         "dry_events"},
        [](const Cell& cell) {
          return "d=" + support::Table::num(cell.d) +
                 ",eps=" + support::Table::num(cell.epsilon, 2);
        },
        [&](const Cell& cell, runtime::TrialContext& trial) {
          // Lemma 7/9 couple c to eps: the smaller the schedule slack, the
          // larger the constant must be for the Chernoff margin to hold.
          const double c_for_eps = cell.epsilon < 0.75 ? 8.0 : 2.0;
          const std::size_t n = std::size_t{1} << cell.d;
          const auto estimate = sampling::SizeEstimate::from_true_size(n);
          sampling::SamplingConfig config;
          config.epsilon = cell.epsilon;
          config.c = c_for_eps;
          const auto schedule =
              sampling::hypercube_schedule(estimate, cell.d, config);
          const graph::Hypercube cube(cell.d);

          double ok = 0.0;
          double rounds = 0.0;
          double max_kbits = 0.0;
          double dry = 0.0;
          double samples = 0.0;
          for (int run = 0; run < kRuns; ++run) {
            auto run_rng = trial.rng.split(static_cast<std::uint64_t>(run));
            const auto result =
                sampling::run_hypercube_sampling(cube, schedule, run_rng);
            ok += result.success ? 1.0 : 0.0;
            rounds = static_cast<double>(result.rounds);
            max_kbits = std::max(
                max_kbits,
                static_cast<double>(result.max_node_bits_per_round) / 1000.0);
            dry += static_cast<double>(result.dry_events);
            samples = static_cast<double>(result.samples.front().size());
          }
          return std::vector<double>{ok, rounds, samples, max_kbits, dry};
        },
        [&](const Cell& cell, const std::vector<double>& mean) {
          const int digits = ctx.reps > 1 ? 1 : 0;
          return std::vector<std::string>{
              support::Table::num(cell.d),
              support::Table::num(std::uint64_t{1} << cell.d),
              support::Table::num(cell.epsilon, 2),
              support::Table::num(cell.epsilon < 0.75 ? 8.0 : 2.0, 1),
              support::Table::num(mean[0], digits) + "/" +
                  support::Table::num(kRuns),
              support::Table::num(mean[1], digits),
              support::Table::num(mean[2], digits),
              support::Table::num(mean[3], 1),
              support::Table::num(mean[4], digits)};
        });
    ctx.show("hypercube_sampling", table);
    ctx.interpret(
        "Rounds equal 2*ceil(log2 d) — doubling the dimension adds only two "
        "rounds — and the work per node stays polylogarithmic.");
    return EXIT_SUCCESS;
  });
}
