// Ablation A4: Algorithm 3 with rapid sampling vs with plain-walk sampling
// in Phase 1 — the system-level cost of the primitive. Plain walks deliver
// the same almost-uniform targets but take Theta(log n) rounds, so the whole
// reconfiguration epoch (and with it the join/leave delay T and the churn
// volume that accumulates per epoch) stretches accordingly.
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "bench/common.hpp"
#include "churn/reconfigure.hpp"
#include "graph/hgraph.hpp"
#include "support/rng.hpp"

int main() {
  using namespace reconfnet;
  bench::banner(
      "A4: ablation — Phase 1 via rapid sampling vs plain walks",
      "Same Algorithm 3, same graph; only the node sampling primitive "
      "differs. Epoch length is what the paper's exponential speed-up buys "
      "at the system level.");

  support::Table table({"n", "rapid_epoch_rounds", "plain_epoch_rounds",
                        "epoch_speedup", "rapid_kbits", "plain_kbits"});
  support::Rng rng(bench::kBenchSeed + 20);
  for (const std::size_t n : {128u, 256u, 512u, 1024u}) {
    const auto g = graph::HGraph::random(n, 8, rng);
    churn::ReconfigInput input;
    input.topology = &g;
    input.members.resize(n);
    std::iota(input.members.begin(), input.members.end(), sim::NodeId{0});
    input.leaving.assign(n, false);
    input.joiners.assign(n, {});
    input.sampling.c = 2.0;
    input.estimate = sampling::SizeEstimate::from_true_size(n);

    auto rapid_rng = rng.split(1);
    const auto rapid = churn::reconfigure(input, rapid_rng);

    input.use_plain_walk_sampling = true;
    auto plain_rng = rng.split(2);
    const auto plain = churn::reconfigure(input, plain_rng);

    if (!rapid.success || !plain.success) {
      std::cerr << "epoch failed at n=" << n << "\n";
      return EXIT_FAILURE;
    }
    table.add_row(
        {support::Table::num(static_cast<std::uint64_t>(n)),
         support::Table::num(rapid.rounds),
         support::Table::num(plain.rounds),
         support::Table::num(static_cast<double>(plain.rounds) /
                                 static_cast<double>(rapid.rounds),
                             2),
         support::Table::num(
             static_cast<double>(rapid.max_node_bits_per_round) / 1000.0, 1),
         support::Table::num(
             static_cast<double>(plain.max_node_bits_per_round) / 1000.0,
             1)});
  }
  table.print(std::cout);
  bench::interpretation(
      "Swapping only the Phase 1 primitive stretches the whole epoch by the "
      "sampling-round gap: the delay T within which joins/leaves take "
      "effect — and hence the churn volume each epoch must absorb — grows "
      "with it. This is the system-level payoff of Section 3's "
      "O(log log n) primitive.");
  return EXIT_SUCCESS;
}
