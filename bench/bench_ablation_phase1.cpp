// Ablation A4: Algorithm 3 with rapid sampling vs with plain-walk sampling
// in Phase 1 — the system-level cost of the primitive. Plain walks deliver
// the same almost-uniform targets but take Theta(log n) rounds, so the whole
// reconfiguration epoch (and with it the join/leave delay T and the churn
// volume that accumulates per epoch) stretches accordingly.
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <vector>

#include "bench/common.hpp"
#include "churn/reconfigure.hpp"
#include "graph/hgraph.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "A4_phase1", "A4: ablation — Phase 1 via rapid sampling vs plain walks",
      "Same Algorithm 3, same graph; only the node sampling primitive "
      "differs. Epoch length is what the paper's exponential speed-up buys "
      "at the system level."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    support::Table table({"n", "rapid_epoch_rounds", "plain_epoch_rounds",
                          "epoch_speedup", "rapid_kbits", "plain_kbits"});
    const std::vector<std::size_t> cells{128, 256, 512, 1024};
    const auto means = bench::sweep(
        ctx, table, cells,
        {"rapid_epoch_rounds", "plain_epoch_rounds", "rapid_kbits",
         "plain_kbits", "runs_ok"},
        [](std::size_t n) {
          return "n=" + support::Table::num(static_cast<std::uint64_t>(n));
        },
        [&](std::size_t n, runtime::TrialContext& trial) {
          auto graph_rng = trial.rng.split(0);
          const auto g = graph::HGraph::random(n, 8, graph_rng);
          churn::ReconfigInput input;
          input.topology = &g;
          input.members.resize(n);
          std::iota(input.members.begin(), input.members.end(), sim::NodeId{0});
          input.leaving.assign(n, false);
          input.joiners.assign(n, {});
          input.sampling.c = 2.0;
          input.estimate = sampling::SizeEstimate::from_true_size(n);

          auto rapid_rng = trial.rng.split(1);
          const auto rapid = churn::reconfigure(input, rapid_rng);

          input.use_plain_walk_sampling = true;
          auto plain_rng = trial.rng.split(2);
          const auto plain = churn::reconfigure(input, plain_rng);

          return std::vector<double>{
              static_cast<double>(rapid.rounds),
              static_cast<double>(plain.rounds),
              static_cast<double>(rapid.max_node_bits_per_round) / 1000.0,
              static_cast<double>(plain.max_node_bits_per_round) / 1000.0,
              rapid.success && plain.success ? 1.0 : 0.0};
        },
        [&](std::size_t n, const std::vector<double>& mean) {
          const int digits = ctx.reps > 1 ? 1 : 0;
          return std::vector<std::string>{
              support::Table::num(static_cast<std::uint64_t>(n)),
              support::Table::num(mean[0], digits),
              support::Table::num(mean[1], digits),
              support::Table::num(mean[1] / mean[0], 2),
              support::Table::num(mean[2], 1),
              support::Table::num(mean[3], 1)};
        });
    ctx.show("phase1_primitive", table);
    for (const auto& mean : means) {
      if (mean[4] < 1.0) {
        std::cerr << "epoch failed\n";
        return EXIT_FAILURE;
      }
    }
    ctx.interpret(
        "Swapping only the Phase 1 primitive stretches the whole epoch by "
        "the sampling-round gap: the delay T within which joins/leaves take "
        "effect — and hence the churn volume each epoch must absorb — grows "
        "with it. This is the system-level payoff of Section 3's "
        "O(log log n) primitive.");
    return EXIT_SUCCESS;
  });
}
