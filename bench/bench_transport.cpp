// Experiment V2 (validation): the per-node Section 5 protocol behind the
// Transport seam, driven through the scripted churn/DoS plans that
// tools/deploy_local.sh runs over live UDP. The in-process lockstep run here
// is the reference: its (group, metric) labels are exactly the ones the
// deploy harvester emits, so benchdiff can gate a 64-process live deployment
// against the committed baseline of this bench.
//
// Seeds are FIXED (table seed 1, protocol seed 1 — reconfnet_node's
// defaults), not derived from --seed: the whole point of the cell labels is
// that a live run with default flags lands on the same numbers.
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "transport/inproc.hpp"
#include "transport/scenario.hpp"

namespace {

constexpr int kNodes = 64;
constexpr int kDim = 3;
constexpr int kEpochs = 3;

struct Cell {
  std::string plan;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "V2_transport",
      "V2 (validation): node-level protocol over the Transport seam",
      "A 64-process-shaped deployment of the per-node protocol completes "
      "every reconfiguration epoch under scripted kills and partitions, "
      "never wedges, and its round/bit accounting is the reference the live "
      "UDP deployment is diffed against."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    support::Table table({"plan", "ok", "rounds", "epochs", "fallbacks",
                          "kbits/node/epoch", "lookup", "finished"});
    const std::vector<Cell> cells = {
        {"none"}, {"kill2"}, {"partition1"}, {"kill2,partition1"}};
    bool all_ok = true;

    const auto means = bench::sweep(
        ctx, table, cells,
        {"ok", "rounds", "epochs_completed_mean", "fallbacks_mean",
         "bits_per_node_per_epoch", "lookup_success_rate", "finished_frac"},
        [](const Cell& cell) {
          return "n=" + support::Table::num(std::uint64_t{kNodes}) +
                 " d=" + support::Table::num(std::uint64_t{kDim}) +
                 " plan=" + transport::canonical_plan_name(cell.plan);
        },
        [&](const Cell& cell, runtime::TrialContext&) {
          transport::InprocDeploymentConfig config;
          config.nodes = kNodes;
          config.dimension = kDim;
          config.protocol.epochs = kEpochs;
          config.protocol.dht_smoke = true;
          // The plan's crash rounds depend on the epoch length, which every
          // process derives from the shared table; probe it the same way.
          {
            transport::InprocDeployment probe(config);
            config.plan = transport::parse_plan(
                cell.plan, kNodes, probe.node(0).epoch_rounds());
          }
          transport::InprocDeployment deployment(config);
          const auto report = deployment.run();

          double live = 0.0;
          double epochs_sum = 0.0;
          double fallbacks_sum = 0.0;
          double bits_sum = 0.0;
          double lookups = 0.0;
          double finished = 0.0;
          for (int id = 0; id < kNodes; ++id) {
            bool crashed_forever = false;
            for (const fault::CrashEvent& event : config.plan.crashes) {
              if (event.node == static_cast<sim::NodeId>(id) &&
                  event.restart < 0) {
                crashed_forever = true;
              }
            }
            if (crashed_forever) continue;
            const auto& metrics =
                deployment.node(static_cast<sim::NodeId>(id)).metrics();
            live += 1.0;
            epochs_sum += static_cast<double>(metrics.epochs_completed);
            fallbacks_sum += static_cast<double>(metrics.fallbacks);
            bits_sum += static_cast<double>(metrics.bits_sent);
            lookups += metrics.lookup_ok ? 1.0 : 0.0;
            finished += metrics.finished ? 1.0 : 0.0;
          }
          const bool ok = report.all_live_finished &&
                          epochs_sum >= kEpochs * live && lookups >= live;
          return std::vector<double>{
              ok ? 1.0 : 0.0,
              static_cast<double>(report.rounds),
              live > 0 ? epochs_sum / live : 0.0,
              live > 0 ? fallbacks_sum / live : 0.0,
              live > 0 ? bits_sum / (live * kEpochs) : 0.0,
              live > 0 ? lookups / live : 0.0,
              live > 0 ? finished / live : 0.0};
        },
        [&](const Cell& cell, const std::vector<double>& mean) {
          if (mean[0] < 1.0) all_ok = false;
          return std::vector<std::string>{
              transport::canonical_plan_name(cell.plan),
              mean[0] >= 1.0 ? "yes" : "NO",
              support::Table::num(mean[1], 0),
              support::Table::num(mean[2], 2),
              support::Table::num(mean[3], 2),
              support::Table::num(mean[4] / 1000.0, 1),
              support::Table::num(mean[5], 2),
              support::Table::num(mean[6], 2)};
        });
    (void)means;

    ctx.show("transport_validation", table);
    ctx.interpret(
        "Every plan converges: scripted crash-stops and a healing partition "
        "cost at most extra attempts (fallback-to-previous-configuration), "
        "never a wedge, and the surviving nodes' greedy lookups all succeed "
        "on the reorganized tables. These cells are the reference a live "
        "64-process UDP deployment is benchdiff-gated against.");
    return all_ok ? EXIT_SUCCESS : EXIT_FAILURE;
  });
}
