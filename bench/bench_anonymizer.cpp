// Experiment T7 (Corollary 2): robust anonymous routing — reliability,
// anonymity (uniform exit servers), and O(1) rounds per request, even while
// the server overlay is under heavy DoS blocking.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "apps/anonym/anonymizer.hpp"
#include "bench/common.hpp"
#include "dos/overlay.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "T7_anonymizer", "T7: robust anonymous routing (Corollary 2)",
      "Claim: requests and replies are delivered reliably in O(1) rounds, "
      "and exit servers are uniform over V from the attacker's view."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    support::Table table(
        {"blocked_frac", "delivered", "replied", "rounds", "exit_chi2_p"});
    constexpr std::size_t kRequestsPerTable = 400;
    constexpr std::size_t kServers = 512;
    const std::vector<double> cells{0.0, 0.2, 0.35, 0.45};
    bench::sweep(
        ctx, table, cells,
        {"delivered_pct", "replied_pct", "rounds", "exit_chi2_p"},
        [](double blocked_fraction) {
          return "blocked=" + support::Table::num(blocked_fraction, 2);
        },
        [&](double blocked_fraction, runtime::TrialContext& trial) {
          std::size_t delivered = 0;
          std::size_t replied = 0;
          std::size_t total = 0;
          sim::Round rounds = 0;
          std::vector<std::uint64_t> exits(kServers, 0);
          // The paper's anonymity notion is "uniform with respect to the
          // current knowledge of the attacker": the attacker knows which
          // servers it blocked, so the claim is uniformity over the servers
          // able to act as exits. We accumulate the matching expected counts
          // per generation.
          std::vector<double> expected(kServers, 0.0);
          // Aggregate across freshly reorganized overlays (each
          // reconfiguration re-randomizes the groups, which is the anonymity
          // mechanism).
          for (int generation = 0; generation < 10; ++generation) {
            auto gen_rng =
                trial.rng.split(static_cast<std::uint64_t>(generation));
            dos::DosOverlay::Config config;
            config.size = kServers;
            config.group_c = 2.0;
            config.seed = gen_rng.next();
            dos::DosOverlay overlay(config);
            (void)overlay.run_epoch({});  // fresh random groups

            auto rng = gen_rng.split(1);
            std::vector<sim::BlockedSet> blocked(
                apps::kAnonymizerPipelineRounds);
            for (auto& set : blocked) {
              for (sim::NodeId node = 0; node < kServers; ++node) {
                if (rng.bernoulli(blocked_fraction)) set.insert(node);
              }
            }
            std::vector<apps::AnonymousRequest> requests(kRequestsPerTable /
                                                         10);
            for (std::size_t i = 0; i < requests.size(); ++i) {
              requests[i] = {9000 + i, 9500 + i};
            }
            const auto report = apps::route_anonymous_batch(
                overlay.groups(), requests, blocked, rng);
            delivered += report.delivered;
            replied += report.replied;
            total += report.requests;
            rounds = report.rounds;
            for (sim::NodeId exit : report.exit_servers) ++exits[exit];
            // Eligible exits this generation: non-blocked through rounds 0-2.
            std::vector<sim::NodeId> eligible;
            for (sim::NodeId server = 0; server < kServers; ++server) {
              if (!blocked[0].contains(server) &&
                  !blocked[1].contains(server) &&
                  !blocked[2].contains(server)) {
                eligible.push_back(server);
              }
            }
            if (!eligible.empty()) {
              const double share =
                  static_cast<double>(report.exit_servers.size()) /
                  static_cast<double>(eligible.size());
              for (sim::NodeId server : eligible) expected[server] += share;
            }
          }
          // Chi-square of observed exits against the
          // attacker-knowledge-adjusted expectation, over servers with
          // positive expectation.
          std::vector<std::uint64_t> observed_cells;
          std::vector<double> expected_cells;
          for (std::size_t server = 0; server < kServers; ++server) {
            if (expected[server] > 0.5) {
              observed_cells.push_back(exits[server]);
              expected_cells.push_back(expected[server]);
            }
          }
          const double chi2_p =
              support::chi_square(observed_cells, expected_cells).p_value;
          return std::vector<double>{
              static_cast<double>(delivered) / static_cast<double>(total) *
                  100.0,
              static_cast<double>(replied) / static_cast<double>(total) *
                  100.0,
              static_cast<double>(rounds), chi2_p};
        },
        [&](double blocked_fraction, const std::vector<double>& mean) {
          const int digits = ctx.reps > 1 ? 1 : 0;
          return std::vector<std::string>{
              support::Table::num(blocked_fraction, 2),
              support::Table::num(mean[0], 1) + "%",
              support::Table::num(mean[1], 1) + "%",
              support::Table::num(mean[2], digits),
              support::Table::num(mean[3], 4)};
        });
    ctx.show("anonymous_routing", table);
    ctx.interpret(
        "Delivery stays near-perfect through 45% blocking (a (1/2-eps) "
        "adversary with eps=0.05) because destination groups of ~32 servers "
        "always keep live members; the reply path needs survivors across all "
        "five rounds so it degrades earlier. The chi-square p-values compare "
        "exits against uniformity over the servers the attacker knows to be "
        "non-blocked — the paper's anonymity notion — and show no detectable "
        "bias at any blocking level.");
    return EXIT_SUCCESS;
  });
}
