// Experiment V1 (validation): the full message-level implementation of the
// Section 5 group simulation vs the group-level fast path. Both execute the
// same protocol; the node-level run additionally meters every bit that
// crosses a node boundary and exercises the candidate/adopt/resync machinery
// under blocking.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "dos/group_table.hpp"
#include "dos/node_sim.hpp"
#include "support/rng.hpp"

int main() {
  using namespace reconfnet;
  bench::banner(
      "V1 (validation): node-level group simulation (Section 5, verbatim)",
      "Every available representative simulates its supernode, the lowest-id "
      "available candidate wins, state broadcasts resync blocked nodes; all "
      "bits are metered for real.");

  support::Table table({"n", "d", "blocked", "ok", "rounds", "resyncs",
                        "max_kbits/nd/rd", "consistent"});
  for (const std::size_t n : {128u, 256u, 512u}) {
    for (const double blocked_fraction : {0.0, 0.25}) {
      support::Rng rng(bench::kBenchSeed + n +
                       static_cast<std::uint64_t>(blocked_fraction * 100));
      std::vector<sim::NodeId> ids(n);
      for (std::size_t i = 0; i < n; ++i) ids[i] = i;
      const int d = n >= 512 ? 4 : 3;
      const auto groups = dos::GroupTable::random(d, ids, rng);

      std::vector<sim::BlockedSet> blocked(40);
      for (auto& set : blocked) {
        for (sim::NodeId node = 0; node < n; ++node) {
          if (rng.bernoulli(blocked_fraction)) set.insert(node);
        }
      }
      auto run_rng = rng.split(1);
      const auto report =
          dos::run_node_level_epoch(groups, {}, blocked, run_rng);
      table.add_row(
          {support::Table::num(static_cast<std::uint64_t>(n)),
           support::Table::num(d),
           support::Table::num(blocked_fraction, 2),
           report.success ? "yes" : report.failure_reason,
           support::Table::num(report.rounds),
           support::Table::num(static_cast<std::uint64_t>(report.resyncs)),
           support::Table::num(
               static_cast<double>(report.max_node_bits_per_round) / 1000.0,
               1),
           report.knowledge_consistent ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  bench::interpretation(
      "The verbatim protocol reorganizes in the same round count the "
      "group-level fast path charges, every replica of every supernode "
      "agrees on the final state, and under 25% blocking the resync counter "
      "shows the per-round S(x) broadcast doing exactly the job the paper "
      "assigns it: re-admitting formerly blocked nodes to the simulation.");
  return EXIT_SUCCESS;
}
