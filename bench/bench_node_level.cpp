// Experiment V1 (validation): the full message-level implementation of the
// Section 5 group simulation vs the group-level fast path. Both execute the
// same protocol; the node-level run additionally meters every bit that
// crosses a node boundary and exercises the candidate/adopt/resync machinery
// under blocking.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "dos/group_table.hpp"
#include "dos/node_sim.hpp"
#include "support/rng.hpp"

namespace {

struct Cell {
  std::size_t n;
  double blocked_fraction;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "V1_node_level",
      "V1 (validation): node-level group simulation (Section 5, verbatim)",
      "Every available representative simulates its supernode, the lowest-id "
      "available candidate wins, state broadcasts resync blocked nodes; all "
      "bits are metered for real."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    support::Table table({"n", "d", "blocked", "ok", "rounds", "resyncs",
                          "max_kbits/nd/rd", "consistent"});
    std::vector<Cell> cells;
    for (const std::size_t n : {128u, 256u, 512u}) {
      for (const double blocked_fraction : {0.0, 0.25}) {
        cells.push_back({n, blocked_fraction});
      }
    }
    bench::sweep(
        ctx, table, cells,
        {"ok", "rounds", "resyncs", "max_kbits_per_node_round", "consistent"},
        [](const Cell& cell) {
          return "n=" +
                 support::Table::num(static_cast<std::uint64_t>(cell.n)) +
                 ",blocked=" + support::Table::num(cell.blocked_fraction, 2);
        },
        [&](const Cell& cell, runtime::TrialContext& trial) {
          std::vector<sim::NodeId> ids(cell.n);
          for (std::size_t i = 0; i < cell.n; ++i) ids[i] = i;
          const int d = cell.n >= 512 ? 4 : 3;
          auto rng = trial.rng.split(0);
          const auto groups = dos::GroupTable::random(d, ids, rng);

          std::vector<sim::BlockedSet> blocked(40);
          for (auto& set : blocked) {
            for (sim::NodeId node = 0; node < cell.n; ++node) {
              if (rng.bernoulli(cell.blocked_fraction)) set.insert(node);
            }
          }
          auto run_rng = trial.rng.split(1);
          const auto report =
              dos::run_node_level_epoch(groups, {}, blocked, run_rng);
          return std::vector<double>{
              report.success ? 1.0 : 0.0, static_cast<double>(report.rounds),
              static_cast<double>(report.resyncs),
              static_cast<double>(report.max_node_bits_per_round) / 1000.0,
              report.knowledge_consistent ? 1.0 : 0.0};
        },
        [&](const Cell& cell, const std::vector<double>& mean) {
          const int digits = ctx.reps > 1 ? 1 : 0;
          return std::vector<std::string>{
              support::Table::num(static_cast<std::uint64_t>(cell.n)),
              support::Table::num(cell.n >= 512 ? 4 : 3),
              support::Table::num(cell.blocked_fraction, 2),
              mean[0] >= 1.0 ? "yes" : support::Table::num(mean[0], 2),
              support::Table::num(mean[1], digits),
              support::Table::num(mean[2], digits),
              support::Table::num(mean[3], 1),
              mean[4] >= 1.0 ? "yes" : "NO"};
        });
    ctx.show("node_level_validation", table);
    ctx.interpret(
        "The verbatim protocol reorganizes in the same round count the "
        "group-level fast path charges, every replica of every supernode "
        "agrees on the final state, and under 25% blocking the resync "
        "counter shows the per-round S(x) broadcast doing exactly the job "
        "the paper assigns it: re-admitting formerly blocked nodes to the "
        "simulation.");
    return EXIT_SUCCESS;
  });
}
