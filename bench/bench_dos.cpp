// Experiment T5 (Theorem 6): the lateness crossover. A topology-aware DoS
// adversary disconnects the static overlay even with modest budgets, and
// silences groups of the reconfiguring overlay when it is 0-late; once its
// information is ~2t rounds old (t = epoch length), reconfiguration makes
// its targeting worthless.
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "adversary/dos.hpp"
#include "bench/common.hpp"
#include "dos/overlay.hpp"
#include "support/rng.hpp"

namespace {

using namespace reconfnet;

dos::DosOverlay::Config make_config(std::uint64_t seed) {
  dos::DosOverlay::Config config;
  config.size = 1024;
  config.group_c = 2.0;
  config.seed = seed;
  return config;
}

std::unique_ptr<adversary::DosAdversary> make_adversary(
    const std::string& kind, support::Rng rng) {
  if (kind == "isolation") {
    return std::make_unique<adversary::IsolationDos>(rng);
  }
  if (kind == "group-wipe") {
    return std::make_unique<adversary::GroupWipeDos>(rng);
  }
  return std::make_unique<adversary::RandomDos>(rng);
}

struct Cell {
  std::string strategy;
  int lateness = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "T5_dos", "T5: DoS survival vs adversary lateness (Theorem 6)",
      "Claim: a (1/2-eps)-bounded adversary with Omega(log log n)-late "
      "topology information cannot disconnect the reconfiguring overlay; "
      "fresher information (or a static overlay) breaks it."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    constexpr double kBlockedFraction = 0.35;
    constexpr int kEpochs = 4;

    std::vector<Cell> cells;
    for (const std::string strategy : {"isolation", "group-wipe", "random"}) {
      for (const int lateness : {0, 8, 16, 32, 64}) {
        cells.push_back({strategy, lateness});
      }
    }

    support::Table table({"adversary", "lateness", "epochs_ok",
                          "silenced_grp_rounds", "disconnected_rounds",
                          "min_avail"});
    bench::sweep(
        ctx, table, cells,
        {"epochs_ok", "silenced_group_rounds", "disconnected_rounds",
         "min_available_fraction"},
        [](const Cell& cell) {
          return cell.strategy + "/lateness=" +
                 support::Table::num(cell.lateness);
        },
        [&](const Cell& cell, runtime::TrialContext& trial) {
          dos::DosOverlay overlay(make_config(trial.derive_seed()));
          auto adversary =
              make_adversary(cell.strategy, trial.rng.split(1));
          dos::DosOverlay::Attack attack;
          attack.adversary = adversary.get();
          attack.lateness = cell.lateness;
          attack.blocked_fraction = kBlockedFraction;
          double ok = 0.0;
          double silenced = 0.0;
          double disconnected = 0.0;
          double min_avail = 1.0;
          for (int epoch = 0; epoch < kEpochs; ++epoch) {
            const auto report = overlay.run_epoch(attack);
            ok += report.success ? 1.0 : 0.0;
            silenced += static_cast<double>(report.silenced_group_rounds);
            disconnected +=
                static_cast<double>(report.disconnected_rounds);
            min_avail =
                std::min(min_avail, report.min_available_fraction);
          }
          return std::vector<double>{ok, silenced, disconnected, min_avail};
        },
        [&](const Cell& cell, const std::vector<double>& mean) {
          return std::vector<std::string>{
              cell.strategy, support::Table::num(cell.lateness),
              support::Table::num(mean[0], ctx.reps > 1 ? 2 : 0) + "/" +
                  support::Table::num(kEpochs),
              support::Table::num(mean[1], ctx.reps > 1 ? 1 : 0),
              support::Table::num(mean[2], ctx.reps > 1 ? 1 : 0),
              support::Table::num(mean[3], 3)};
        });
    ctx.show("lateness_sweep", table);

    std::cout << "\nBaseline: static overlay (no reconfiguration), isolation "
                 "adversary, 80 rounds (long enough for even a 64-late view "
                 "to become available):\n\n";
    support::Table baseline({"lateness", "disconnected_rounds", "survived"});
    const std::vector<Cell> static_cells{{"isolation", 0}, {"isolation", 64}};
    bench::sweep(
        ctx, baseline, static_cells,
        {"disconnected_rounds", "survived"},
        [](const Cell& cell) {
          return "static/lateness=" + support::Table::num(cell.lateness);
        },
        [&](const Cell& cell, runtime::TrialContext& trial) {
          dos::DosOverlay overlay(make_config(trial.derive_seed()));
          adversary::IsolationDos adversary(trial.rng.split(1));
          dos::DosOverlay::Attack attack;
          attack.adversary = &adversary;
          attack.lateness = cell.lateness;
          attack.blocked_fraction = kBlockedFraction;
          const auto report = overlay.run_static(attack, 80);
          return std::vector<double>{
              static_cast<double>(report.disconnected_rounds),
              report.success ? 1.0 : 0.0};
        },
        [&](const Cell& cell, const std::vector<double>& mean) {
          return std::vector<std::string>{
              support::Table::num(cell.lateness),
              support::Table::num(mean[0], ctx.reps > 1 ? 1 : 0),
              mean[1] >= 1.0 ? "yes" : "NO"};
        });
    baseline.print(std::cout);
    ctx.results->add_table("static_baseline", baseline);
    ctx.interpret(
        "Crossover: at lateness 0 the targeted strategies silence groups and "
        "disconnect non-blocked nodes; from roughly 2t (= 32 rounds here, two "
        "epoch lengths) onward every epoch succeeds — matching Theorem 6's "
        "Omega(log log n)-lateness requirement. The static overlay falls to "
        "the isolation attack at ANY lateness, because its topology never "
        "changes and stale information stays accurate forever.");
    return EXIT_SUCCESS;
  });
}
