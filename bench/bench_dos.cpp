// Experiment T5 (Theorem 6): the lateness crossover. A topology-aware DoS
// adversary disconnects the static overlay even with modest budgets, and
// silences groups of the reconfiguring overlay when it is 0-late; once its
// information is ~2t rounds old (t = epoch length), reconfiguration makes
// its targeting worthless.
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "adversary/dos.hpp"
#include "bench/common.hpp"
#include "dos/overlay.hpp"
#include "support/rng.hpp"

namespace {

using namespace reconfnet;

dos::DosOverlay::Config make_config(std::uint64_t seed) {
  dos::DosOverlay::Config config;
  config.size = 1024;
  config.group_c = 2.0;
  config.seed = seed;
  return config;
}

}  // namespace

int main() {
  using namespace reconfnet;
  bench::banner(
      "T5: DoS survival vs adversary lateness (Theorem 6)",
      "Claim: a (1/2-eps)-bounded adversary with Omega(log log n)-late "
      "topology information cannot disconnect the reconfiguring overlay; "
      "fresher information (or a static overlay) breaks it.");

  constexpr double kBlockedFraction = 0.35;
  constexpr int kEpochs = 4;

  struct Strategy {
    std::string name;
    std::function<std::unique_ptr<adversary::DosAdversary>(support::Rng)>
        make;
  };
  const std::vector<Strategy> strategies{
      {"isolation",
       [](support::Rng rng) {
         return std::make_unique<adversary::IsolationDos>(rng);
       }},
      {"group-wipe",
       [](support::Rng rng) {
         return std::make_unique<adversary::GroupWipeDos>(rng);
       }},
      {"random",
       [](support::Rng rng) {
         return std::make_unique<adversary::RandomDos>(rng);
       }},
  };

  support::Table table({"adversary", "lateness", "epochs_ok",
                        "silenced_grp_rounds", "disconnected_rounds",
                        "min_avail"});
  std::uint64_t seed = bench::kBenchSeed + 6;
  for (const auto& strategy : strategies) {
    for (const int lateness : {0, 8, 16, 32, 64}) {
      dos::DosOverlay overlay(make_config(seed));
      auto adversary = strategy.make(support::Rng(seed + 1));
      dos::DosOverlay::Attack attack;
      attack.adversary = adversary.get();
      attack.lateness = lateness;
      attack.blocked_fraction = kBlockedFraction;
      int ok = 0;
      std::size_t silenced = 0;
      std::size_t disconnected = 0;
      double min_avail = 1.0;
      for (int epoch = 0; epoch < kEpochs; ++epoch) {
        const auto report = overlay.run_epoch(attack);
        ok += report.success ? 1 : 0;
        silenced += report.silenced_group_rounds;
        disconnected += report.disconnected_rounds;
        min_avail = std::min(min_avail, report.min_available_fraction);
      }
      table.add_row(
          {strategy.name, support::Table::num(lateness),
           support::Table::num(ok) + "/" + support::Table::num(kEpochs),
           support::Table::num(static_cast<std::uint64_t>(silenced)),
           support::Table::num(static_cast<std::uint64_t>(disconnected)),
           support::Table::num(min_avail, 3)});
      seed += 10;
    }
  }
  table.print(std::cout);

  std::cout << "\nBaseline: static overlay (no reconfiguration), isolation "
               "adversary, 80 rounds (long enough for even a 64-late view "
               "to become available):\n\n";
  support::Table baseline({"lateness", "disconnected_rounds", "survived"});
  for (const int lateness : {0, 64}) {
    dos::DosOverlay overlay(make_config(seed));
    support::Rng rng(seed + 1);
    adversary::IsolationDos adversary(rng);
    dos::DosOverlay::Attack attack;
    attack.adversary = &adversary;
    attack.lateness = lateness;
    attack.blocked_fraction = kBlockedFraction;
    const auto report = overlay.run_static(attack, 80);
    baseline.add_row({support::Table::num(lateness),
                      support::Table::num(static_cast<std::uint64_t>(
                          report.disconnected_rounds)),
                      report.success ? "yes" : "NO"});
    seed += 10;
  }
  baseline.print(std::cout);
  bench::interpretation(
      "Crossover: at lateness 0 the targeted strategies silence groups and "
      "disconnect non-blocked nodes; from roughly 2t (= 32 rounds here, two "
      "epoch lengths) onward every epoch succeeds — matching Theorem 6's "
      "Omega(log log n)-lateness requirement. The static overlay falls to "
      "the isolation attack at ANY lateness, because its topology never "
      "changes and stale information stays accurate forever.");
  return EXIT_SUCCESS;
}
