// Experiment M1: micro-benchmarks of the substrate primitives, via
// google-benchmark. These are throughput numbers, not paper claims; they
// document where the simulator's time goes.
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "graph/connectivity.hpp"
#include "graph/hgraph.hpp"
#include "graph/hypercube.hpp"
#include "graph/spectral.hpp"
#include "dos/group_table.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace {

using namespace reconfnet;

void BM_RngBelow(benchmark::State& state) {
  support::Rng rng(1);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += rng.below(1000);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngBelow);

void BM_RngPermutation(benchmark::State& state) {
  support::Rng rng(2);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.permutation(n));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RngPermutation)->Arg(1024)->Arg(8192);

void BM_HGraphConstruction(benchmark::State& state) {
  support::Rng rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::HGraph::random(n, 8, rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HGraphConstruction)->Arg(1024)->Arg(8192);

void BM_RandomWalkStep(benchmark::State& state) {
  support::Rng rng(4);
  const auto g = graph::HGraph::random(4096, 8, rng);
  std::size_t v = 0;
  for (auto _ : state) {
    v = g.neighbor(v, static_cast<int>(rng.below(8)));
  }
  benchmark::DoNotOptimize(v);
}
BENCHMARK(BM_RandomWalkStep);

void BM_HypercubeNeighbors(benchmark::State& state) {
  const graph::Hypercube cube(16);
  std::uint64_t v = 0xBEEF;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube.neighbors(v));
  }
}
BENCHMARK(BM_HypercubeNeighbors);

void BM_ConnectivityGroupedOverlay(benchmark::State& state) {
  support::Rng rng(5);
  std::vector<sim::NodeId> nodes(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < nodes.size(); ++i) nodes[i] = i;
  const auto table = dos::GroupTable::random(6, nodes, rng);
  const auto edges = table.overlay_edges();
  const auto all = table.all_nodes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::is_connected(all, edges));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_ConnectivityGroupedOverlay)->Arg(1024)->Arg(4096);

void BM_SpectralGapEstimate(benchmark::State& state) {
  support::Rng rng(6);
  const auto g = graph::HGraph::random(
      static_cast<std::size_t>(state.range(0)), 8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::second_eigenvalue_estimate(g, rng, 50));
  }
}
BENCHMARK(BM_SpectralGapEstimate)->Arg(512)->Arg(2048);

void BM_ChiSquare(benchmark::State& state) {
  support::Rng rng(7);
  std::vector<std::uint64_t> counts(1024);
  for (auto& count : counts) count = 100 + rng.below(20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(support::chi_square_uniform(counts));
  }
}
BENCHMARK(BM_ChiSquare);

}  // namespace

// Custom main so this binary accepts the same uniform flags as the other
// bench binaries (--reps/--json/--jobs/--seed), translated onto
// google-benchmark's own options. --jobs and --seed are accepted but no-ops:
// the micro-benchmarks are single-process and use fixed internal seeds.
int main(int argc, char** argv) {
  std::vector<std::string> translated;
  translated.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      translated.push_back(std::string("--benchmark_repetitions=") +
                           argv[++i]);
    } else if (arg == "--json") {
      std::string path = "BENCH_M1_micro.json";
      if (i + 1 < argc &&
          std::string_view(argv[i + 1]).substr(0, 2) != "--") {
        path = argv[++i];
      }
      translated.push_back("--benchmark_out=" + path);
      translated.emplace_back("--benchmark_out_format=json");
    } else if ((arg == "--jobs" || arg == "--seed") && i + 1 < argc) {
      ++i;
    } else {
      translated.emplace_back(arg);
    }
  }
  std::vector<char*> c_args;
  c_args.reserve(translated.size());
  for (auto& s : translated) c_args.push_back(s.data());
  int c_argc = static_cast<int>(c_args.size());
  benchmark::Initialize(&c_argc, c_args.data());
  if (benchmark::ReportUnrecognizedArguments(c_argc, c_args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
