// Experiment F4 (baseline): reconfiguration by skip-graph routing — the
// Section 1.2 alternative. Every node draws a fresh random key and routes a
// message to its new position in the old skip graph; the slowest route lower
// bounds the reconfiguration's round count, and it grows with log n. The
// same table shows Algorithm 3's epoch length for comparison.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "bench/common.hpp"
#include "churn/reconfigure.hpp"
#include "graph/hgraph.hpp"
#include "graph/skip_graph.hpp"
#include "support/rng.hpp"

int main() {
  using namespace reconfnet;
  bench::banner(
      "F4: reconfiguration via skip-graph routing (Section 1.2 baseline)",
      "The routing-based alternative needs max-route-length rounds per "
      "reconfiguration (Theta(log n)); Algorithm 3 needs O(log log n).");

  support::Table table({"n", "skip_max_route", "skip_avg_route",
                        "algorithm3_epoch", "advantage"});
  support::Rng rng(bench::kBenchSeed + 30);
  for (const std::size_t n : {128u, 256u, 512u, 1024u, 2048u}) {
    // Skip-graph baseline: everyone routes to a fresh random key.
    const auto skip = graph::SkipGraph::random(n, rng);
    std::size_t max_hops = 0;
    double total_hops = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      const auto path = skip.route(v, rng.next());
      max_hops = std::max(max_hops, path.size());
      total_hops += static_cast<double>(path.size());
    }

    // Algorithm 3 epoch on an H-graph of the same size.
    const auto g = graph::HGraph::random(n, 8, rng);
    churn::ReconfigInput input;
    input.topology = &g;
    input.members.resize(n);
    std::iota(input.members.begin(), input.members.end(), sim::NodeId{0});
    input.leaving.assign(n, false);
    input.joiners.assign(n, {});
    input.sampling.c = 2.0;
    input.estimate = sampling::SizeEstimate::from_true_size(n);
    auto epoch_rng = rng.split(n);
    const auto epoch = churn::reconfigure(input, epoch_rng);
    if (!epoch.success) {
      std::cerr << "Algorithm 3 epoch failed at n=" << n << "\n";
      return EXIT_FAILURE;
    }

    table.add_row(
        {support::Table::num(static_cast<std::uint64_t>(n)),
         support::Table::num(static_cast<std::uint64_t>(max_hops)),
         support::Table::num(total_hops / static_cast<double>(n), 1),
         support::Table::num(epoch.rounds),
         support::Table::num(static_cast<double>(max_hops) /
                                 static_cast<double>(epoch.rounds),
                             2) +
             "x slower"});
  }
  table.print(std::cout);
  bench::interpretation(
      "Growth rates, not absolute values, are the story at laptop scale: "
      "the max route grows with log n (18 -> 29 hops over a 16x size range) "
      "while Algorithm 3's epoch stays nearly flat (19 -> 23 rounds, "
      "dominated by constants plus log log n). The curves have already "
      "crossed by n ~ 2048 and diverge from there — and the quoted hops "
      "are only the routing phase; rebuilding the level lists costs "
      "another O(log n). This is the Section 1.2 argument for "
      "sampling-based over routing-based reconfiguration, measured.");
  return EXIT_SUCCESS;
}
