// Experiment F4 (baseline): reconfiguration by skip-graph routing — the
// Section 1.2 alternative. Every node draws a fresh random key and routes a
// message to its new position in the old skip graph; the slowest route lower
// bounds the reconfiguration's round count, and it grows with log n. The
// same table shows Algorithm 3's epoch length for comparison.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <vector>

#include "bench/common.hpp"
#include "churn/reconfigure.hpp"
#include "graph/hgraph.hpp"
#include "graph/skip_graph.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "F4_skipgraph",
      "F4: reconfiguration via skip-graph routing (Section 1.2 baseline)",
      "The routing-based alternative needs max-route-length rounds per "
      "reconfiguration (Theta(log n)); Algorithm 3 needs O(log log n)."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    support::Table table({"n", "skip_max_route", "skip_avg_route",
                          "algorithm3_epoch", "advantage"});
    const std::vector<std::size_t> cells{128, 256, 512, 1024, 2048};
    const auto means = bench::sweep(
        ctx, table, cells,
        {"skip_max_route", "skip_avg_route", "algorithm3_epoch", "epoch_ok"},
        [](std::size_t n) {
          return "n=" + support::Table::num(static_cast<std::uint64_t>(n));
        },
        [&](std::size_t n, runtime::TrialContext& trial) {
          // Skip-graph baseline: everyone routes to a fresh random key.
          auto skip_rng = trial.rng.split(0);
          const auto skip = graph::SkipGraph::random(n, skip_rng);
          std::size_t max_hops = 0;
          double total_hops = 0.0;
          for (std::size_t v = 0; v < n; ++v) {
            const auto path = skip.route(v, skip_rng.next());
            max_hops = std::max(max_hops, path.size());
            total_hops += static_cast<double>(path.size());
          }

          // Algorithm 3 epoch on an H-graph of the same size.
          auto graph_rng = trial.rng.split(1);
          const auto g = graph::HGraph::random(n, 8, graph_rng);
          churn::ReconfigInput input;
          input.topology = &g;
          input.members.resize(n);
          std::iota(input.members.begin(), input.members.end(), sim::NodeId{0});
          input.leaving.assign(n, false);
          input.joiners.assign(n, {});
          input.sampling.c = 2.0;
          input.estimate = sampling::SizeEstimate::from_true_size(n);
          auto epoch_rng = trial.rng.split(2);
          const auto epoch = churn::reconfigure(input, epoch_rng);
          return std::vector<double>{
              static_cast<double>(max_hops),
              total_hops / static_cast<double>(n),
              static_cast<double>(epoch.rounds),
              epoch.success ? 1.0 : 0.0};
        },
        [&](std::size_t n, const std::vector<double>& mean) {
          const int digits = ctx.reps > 1 ? 1 : 0;
          return std::vector<std::string>{
              support::Table::num(static_cast<std::uint64_t>(n)),
              support::Table::num(mean[0], digits),
              support::Table::num(mean[1], 1),
              support::Table::num(mean[2], digits),
              support::Table::num(mean[0] / mean[2], 2) + "x slower"};
        });
    ctx.show("skipgraph_baseline", table);
    for (const auto& mean : means) {
      if (mean[3] < 1.0) {
        std::cerr << "Algorithm 3 epoch failed\n";
        return EXIT_FAILURE;
      }
    }
    ctx.interpret(
        "Growth rates, not absolute values, are the story at laptop scale: "
        "the max route grows with log n (18 -> 29 hops over a 16x size "
        "range) while Algorithm 3's epoch stays nearly flat (19 -> 23 "
        "rounds, dominated by constants plus log log n). The curves have "
        "already crossed by n ~ 2048 and diverge from there — and the quoted "
        "hops are only the routing phase; rebuilding the level lists costs "
        "another O(log n). This is the Section 1.2 argument for "
        "sampling-based over routing-based reconfiguration, measured.");
    return EXIT_SUCCESS;
  });
}
