// Experiment T4 (Theorems 4/5): the reconfiguring H-graph overlay maintains
// connectivity under sustained adversarial churn of constant rate, including
// topology-aware strategies, while a static H-graph subjected to the same
// departures disconnects.
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <unordered_set>
#include <vector>

#include "adversary/churn.hpp"
#include "bench/common.hpp"
#include "churn/overlay.hpp"
#include "graph/connectivity.hpp"
#include "graph/hgraph.hpp"
#include "support/rng.hpp"

namespace {

using namespace reconfnet;

churn::ChurnOverlay::Config make_config(std::uint64_t seed) {
  churn::ChurnOverlay::Config config;
  config.initial_size = 256;
  config.degree = 8;
  config.sampling.c = 2.0;
  config.seed = seed;
  return config;
}

struct Scenario {
  std::string name;
  std::function<std::unique_ptr<adversary::ChurnAdversary>(support::Rng)>
      make;
  bool topology_aware = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "T4_churn", "T4: connectivity under adversarial churn (Theorems 4/5)",
      "Claim: constant-rate churn by an omniscient adversary never "
      "disconnects the reconfiguring overlay; a static H-graph suffering the "
      "same departures falls apart."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    const std::vector<Scenario> scenarios{
        {"none",
         [](support::Rng rng) {
           (void)rng;
           return std::make_unique<adversary::NoChurn>();
         },
         false},
        {"uniform 2%/rd",
         [](support::Rng rng) {
           return std::make_unique<adversary::UniformChurn>(0.02, 1.0, 2.0,
                                                            rng);
         },
         false},
        {"segment 2%/rd",
         [](support::Rng rng) {
           return std::make_unique<adversary::SegmentChurn>(0.02, 2.0, rng);
         },
         true},
        {"flood 1%/rd",
         [](support::Rng rng) {
           return std::make_unique<adversary::SponsorFloodChurn>(0.01, 4.0,
                                                                 rng);
         },
         false},
        {"burst 30%/7rd",
         [](support::Rng rng) {
           return std::make_unique<adversary::BurstChurn>(0.3, 2.0, 7, rng);
         },
         false},
    };

    constexpr int kEpochs = 8;
    support::Table table({"adversary", "epochs_ok", "connected",
                          "members_end", "rounds/epoch", "max_kbits/nd/rd"});
    const auto means = bench::sweep(
        ctx, table, scenarios,
        {"epochs_ok", "epochs_connected", "members_end", "rounds_per_epoch",
         "max_kbits_per_node_round"},
        [](const Scenario& scenario) { return scenario.name; },
        [&](const Scenario& scenario, runtime::TrialContext& trial) {
          churn::ChurnOverlay overlay(make_config(trial.derive_seed()));
          auto adversary = scenario.make(trial.rng.split(1));
          double ok = 0.0;
          double connected = 0.0;
          sim::Round rounds = 0;
          std::uint64_t max_bits = 0;
          for (int epoch = 0; epoch < kEpochs; ++epoch) {
            if (scenario.topology_aware) {
              // Omniscient adversary refreshes its view of a live cycle.
              static_cast<adversary::SegmentChurn*>(adversary.get())
                  ->set_order(overlay.cycle_order(0));
            }
            const auto report = overlay.run_epoch(*adversary);
            ok += report.success ? 1.0 : 0.0;
            connected += report.connected ? 1.0 : 0.0;
            rounds = report.rounds;
            max_bits = std::max(max_bits, report.max_node_bits_per_round);
          }
          return std::vector<double>{
              ok, connected,
              static_cast<double>(overlay.members().size()),
              static_cast<double>(rounds),
              static_cast<double>(max_bits) / 1000.0};
        },
        [&](const Scenario& scenario, const std::vector<double>& mean) {
          const int digits = ctx.reps > 1 ? 2 : 0;
          return std::vector<std::string>{
              scenario.name,
              support::Table::num(mean[0], digits) + "/" +
                  support::Table::num(kEpochs),
              support::Table::num(mean[1], digits) + "/" +
                  support::Table::num(kEpochs),
              support::Table::num(mean[2], digits),
              support::Table::num(mean[3], digits),
              support::Table::num(mean[4], 1)};
        });
    ctx.show("adversarial_churn", table);
    for (const auto& mean : means) {
      if (mean[1] < static_cast<double>(kEpochs)) {
        std::cerr << "\noverlay disconnected under churn\n";
        return EXIT_FAILURE;
      }
    }

    // Baseline: a static H-graph with no repair. An omniscient adversary
    // isolates a victim by prescribing exactly the victim's neighbors to
    // leave — a vanishing fraction of the network.
    std::cout << "\nBaseline: static H-graph (no reconfiguration), omniscient "
                 "adversary removes the neighborhoods of k victims:\n\n";
    support::Table baseline({"victims", "removed", "removed_frac",
                             "still_connected"});
    support::Rng rng(ctx.seed);
    const auto g = graph::HGraph::random(256, 8, rng);
    for (const std::size_t victims : {1u, 2u, 4u}) {
      std::unordered_set<std::size_t> removed;
      for (std::size_t victim = 0; victim < victims; ++victim) {
        // Victims spread along cycle 0, 50 apart, so neighborhoods are
        // disjoint w.h.p.
        std::size_t v = victim * 50;
        for (auto w : g.neighbors(v)) removed.insert(w);
      }
      std::vector<sim::NodeId> nodes;
      std::vector<std::pair<sim::NodeId, sim::NodeId>> edges;
      for (std::size_t u = 0; u < 256; ++u) {
        if (removed.contains(u)) continue;
        nodes.push_back(u);
        for (auto w : g.neighbors(u)) {
          if (!removed.contains(w)) edges.emplace_back(u, w);
        }
      }
      baseline.add_row(
          {support::Table::num(static_cast<std::uint64_t>(victims)),
           support::Table::num(static_cast<std::uint64_t>(removed.size())),
           support::Table::num(static_cast<double>(removed.size()) / 256.0,
                               3),
           graph::is_connected(nodes, edges) ? "yes" : "NO (disconnected)"});
    }
    ctx.show("static_baseline", baseline);
    ctx.interpret(
        "Every reconfiguring scenario stays connected through all epochs even "
        "though ~30-50% of the membership turns over per epoch. The static "
        "graph is disconnected by the departure of just d=8 targeted nodes "
        "(~3% of the network): without reconfiguration, an omniscient "
        "adversary simply strips one victim's neighborhood.");
    return EXIT_SUCCESS;
  });
}
