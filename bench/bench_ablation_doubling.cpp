// Ablation A1: what pointer doubling buys. At an equal communication-round
// budget, the doubled walks of Algorithm 1 reach length 2^{budget/2} while
// plain token walks reach only `budget`. Bias is measured as the mean BFS
// distance of one origin's samples from that origin — unmixed walks stay
// close to home, uniform samples match the graph-wide mean distance.
#include <cmath>
#include <cstdlib>
#include <deque>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "graph/hgraph.hpp"
#include "sampling/hgraph_sampler.hpp"
#include "sampling/plain_walk.hpp"
#include "sampling/schedule.hpp"
#include "support/rng.hpp"

namespace {

using namespace reconfnet;

std::vector<int> bfs_distances(const graph::HGraph& g, std::size_t origin) {
  std::vector<int> dist(g.size(), -1);
  std::deque<std::size_t> queue{origin};
  dist[origin] = 0;
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop_front();
    for (auto w : g.neighbors(v)) {
      if (dist[w] < 0) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

double mean_distance_of(const std::vector<int>& dist,
                        const std::vector<std::uint64_t>& counts) {
  double sum = 0.0;
  std::uint64_t total = 0;
  for (std::size_t v = 0; v < counts.size(); ++v) {
    sum += static_cast<double>(dist[v]) * static_cast<double>(counts[v]);
    total += counts[v];
  }
  return total == 0 ? 0.0 : sum / static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchSpec spec{
      "A1_doubling", "A1: ablation — pointer doubling vs single-step walks",
      "Same round budget, same graph, same origin: mean BFS distance of the "
      "origin's samples. Uniform samples match the graph-wide mean; unmixed "
      "walks fall short of it."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    const std::size_t n = 1024;
    support::Rng graph_rng(ctx.seed + 10);
    const auto g = graph::HGraph::random(n, 8, graph_rng);
    const auto dist = bfs_distances(g, 0);
    double uniform_mean = 0.0;
    for (auto d : dist) uniform_mean += static_cast<double>(d);
    uniform_mean /= static_cast<double>(n);
    constexpr int kRuns = 40;

    support::Table table({"rounds", "dbl_walk_len", "dbl_mean_dist",
                          "plain_walk_len", "plain_mean_dist",
                          "uniform_ref"});
    const std::vector<int> budgets{2, 4, 6, 8, 10};
    bench::sweep(
        ctx, table, budgets,
        {"doubled_walk_len", "doubled_mean_dist", "plain_mean_dist"},
        [](int budget) { return "budget=" + support::Table::num(budget); },
        [&](int budget, runtime::TrialContext& trial) {
          const int iterations = budget / 2;
          sampling::Schedule schedule;
          schedule.iterations = iterations;
          schedule.m.resize(static_cast<std::size_t>(iterations) + 1);
          for (int i = 0; i <= iterations; ++i) {
            schedule.m[static_cast<std::size_t>(i)] =
                static_cast<std::size_t>(std::pow(3.0, iterations - i) *
                                         16.0);
          }
          schedule.target_walk_length = std::size_t{1} << iterations;

          std::vector<std::uint64_t> doubled_counts(n, 0);
          for (int run = 0; run < kRuns; ++run) {
            auto run_rng = trial.rng.split(static_cast<std::uint64_t>(run));
            const auto result =
                sampling::run_hgraph_sampling(g, schedule, run_rng);
            for (auto s : result.samples.front()) ++doubled_counts[s];
          }

          std::vector<std::uint64_t> plain_counts(n, 0);
          for (int run = 0; run < kRuns; ++run) {
            auto run_rng =
                trial.rng.split(1000 + static_cast<std::uint64_t>(run));
            const auto result = sampling::run_hgraph_plain_walks(
                g, 16, static_cast<std::size_t>(budget), run_rng);
            for (auto s : result.samples.front()) ++plain_counts[s];
          }
          return std::vector<double>{
              static_cast<double>(schedule.target_walk_length),
              mean_distance_of(dist, doubled_counts),
              mean_distance_of(dist, plain_counts)};
        },
        [&](int budget, const std::vector<double>& mean) {
          return std::vector<std::string>{
              support::Table::num(budget),
              support::Table::num(mean[0], 0),
              support::Table::num(mean[1], 3),
              support::Table::num(budget),
              support::Table::num(mean[2], 3),
              support::Table::num(uniform_mean, 3)};
        });
    ctx.show("doubling_vs_plain", table);
    ctx.interpret(
        "At every budget the doubled walks sit closer to the uniform "
        "reference than the single-step walks, because the same rounds buy "
        "walks of length 2^{r/2} instead of r; the doubled column converges "
        "to the reference at budget ~8 while the plain column is still "
        "approaching it. At laptop n the absolute gap is compressed (an "
        "expander mixes in ~log n ~ 10 steps anyway); the gap widens with n "
        "since the doubled length overtakes the mixing time exponentially "
        "sooner. This isolates pointer doubling as the source of the paper's "
        "speed-up.");
    return EXIT_SUCCESS;
  });
}
