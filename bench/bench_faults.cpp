// Experiments F5/F6 (DESIGN.md §10): the paper's model is loss-free, so its
// one-round phases have no retransmission story. F5 measures the loss-rate
// crossover: the bare Algorithm 3 epoch stops completing at tiny i.i.d. loss
// rates, while the ack/retry ReliableChannel wrapper extends full-epoch
// survival to strictly higher loss. F6 measures recovery latency: a healed
// partition reconnects within one backoff cap, a transient crash window is
// bridged by retransmission, and a crash-stopped member is repaired by the
// leave + fresh-id rejoin protocol (Section 1.1 never reuses ids).
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "adversary/churn.hpp"
#include "bench/common.hpp"
#include "churn/overlay.hpp"
#include "churn/reconfigure.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "fault/reliable_channel.hpp"
#include "graph/hgraph.hpp"
#include "support/rng.hpp"

namespace {

using namespace reconfnet;

constexpr int kEpochs = 3;
constexpr sim::Round kSettleRounds = 16;

struct LossCell {
  double loss = 0.0;
};

struct HealCell {
  sim::Round heal = 0;
};

struct ModeOutcome {
  double epochs_ok = 0.0;
  double rounds = 0.0;   ///< rounds of the last epoch
  double offered = 0.0;  ///< messages the injector was consulted on
  double lost = 0.0;     ///< messages it dropped (i.i.d.)
};

/// Runs kEpochs reconfiguration epochs of a churn-free n=64 overlay under
/// i.i.d. loss `loss`; settle = 0 is the paper's bare one-round phases,
/// settle > 0 opts the epoch into the ReliableChannel wrapper.
ModeOutcome run_overlay_epochs(double loss, sim::Round settle,
                               std::uint64_t overlay_seed,
                               support::Rng fault_rng) {
  fault::FaultPlan plan;
  plan.with_loss(loss);
  fault::FaultInjector injector(plan, std::move(fault_rng));
  churn::ChurnOverlay::Config config;
  config.initial_size = 64;
  config.degree = 8;
  config.sampling.c = 2.0;
  config.seed = overlay_seed;
  config.fault_hook = &injector;
  config.reliable_settle_rounds = settle;
  churn::ChurnOverlay overlay(config);
  adversary::NoChurn no_churn;
  ModeOutcome out;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    const auto report = overlay.run_epoch(no_churn);
    out.epochs_ok += report.success ? 1.0 : 0.0;
    out.rounds = static_cast<double>(report.rounds);
  }
  out.offered = static_cast<double>(injector.counters().offered);
  out.lost = static_cast<double>(injector.counters().lost_iid);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "F5_faults",
      "F5/F6: graceful degradation and recovery under injected faults",
      "Claim: the loss-free model's bare one-round phases stop completing at "
      "tiny message-loss rates; the ack/retry recovery wrapper extends "
      "full-epoch survival to strictly higher loss, heals partitions within "
      "one backoff cap, and crash-stopped members rejoin with fresh ids."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    // --- F5: loss-rate crossover, bare vs reliable epochs -----------------
    const std::vector<LossCell> losses{{0.0},  {0.001}, {0.005},
                                       {0.01}, {0.02},  {0.05}};
    support::Table loss_table({"loss", "bare ok", "reliable ok", "bare rds",
                               "rel rds", "dropped"});
    const auto loss_means = bench::sweep(
        ctx, loss_table, losses,
        {"bare_epochs_ok", "reliable_epochs_ok", "bare_rounds",
         "reliable_rounds", "messages_dropped"},
        [](const LossCell& cell) {
          return "loss=" + support::Table::num(cell.loss, 3);
        },
        [&](const LossCell& cell, runtime::TrialContext& trial) {
          const std::uint64_t overlay_seed = trial.derive_seed();
          const auto bare = run_overlay_epochs(cell.loss, 0, overlay_seed,
                                               trial.rng.split(1));
          const auto reliable = run_overlay_epochs(
              cell.loss, kSettleRounds, overlay_seed, trial.rng.split(2));
          return std::vector<double>{bare.epochs_ok, reliable.epochs_ok,
                                     bare.rounds, reliable.rounds,
                                     bare.lost + reliable.lost};
        },
        [&](const LossCell& cell, const std::vector<double>& mean) {
          const int digits = ctx.reps > 1 ? 2 : 0;
          return std::vector<std::string>{
              support::Table::num(cell.loss, 3),
              support::Table::num(mean[0], digits) + "/" +
                  support::Table::num(kEpochs),
              support::Table::num(mean[1], digits) + "/" +
                  support::Table::num(kEpochs),
              support::Table::num(mean[2], digits),
              support::Table::num(mean[3], digits),
              support::Table::num(mean[4], 0)};
        });
    ctx.show("loss_crossover", loss_table);

    // The crossover: the largest swept loss rate at which >= 90% of epochs
    // completed, per mode. The 90% (rather than 100%) threshold absorbs the
    // paper's own w.h.p. residue — even a loss-free epoch occasionally runs
    // the sampler dry at n = 64 and retries. Strictly higher for reliable is
    // the claim under test.
    const double survivable = 0.9 * kEpochs;
    double bare_pstar = -1.0;
    double reliable_pstar = -1.0;
    for (std::size_t i = 0; i < losses.size(); ++i) {
      if (loss_means[i][0] >= survivable) {
        bare_pstar = std::max(bare_pstar, losses[i].loss);
      }
      if (loss_means[i][1] >= survivable) {
        reliable_pstar = std::max(reliable_pstar, losses[i].loss);
      }
    }
    ctx.interpret("Loss crossover: bare epochs complete (>= 90%) up to p = " +
                  support::Table::num(bare_pstar, 3) +
                  ", reliable epochs up to p = " +
                  support::Table::num(reliable_pstar, 3) +
                  " — the recovery wrapper strictly extends the survivable "
                  "loss range (at the cost of extra settle rounds).");
    if (reliable_pstar <= bare_pstar) {
      std::cerr << "\nreliable epochs did not extend the survivable loss "
                   "range\n";
      return EXIT_FAILURE;
    }

    // --- F6a: partition-heal reconnect latency ----------------------------
    // One reliable send crosses a cut that heals at tick H; capped binary
    // exponential backoff bounds the reconnect overshoot by the cap.
    const std::vector<HealCell> heals{{4}, {8}, {16}, {32}};
    support::Table heal_table(
        {"heal tick", "delivered", "overshoot", "retransmissions"});
    const auto heal_means = bench::sweep(
        ctx, heal_table, heals,
        {"delivered_round", "overshoot_rounds", "retransmissions"},
        [](const HealCell& cell) {
          return "heal=" + support::Table::num(
                               static_cast<std::int64_t>(cell.heal));
        },
        [&](const HealCell& cell, runtime::TrialContext& trial) {
          fault::FaultPlan plan;
          plan.with_partition({0, cell.heal, 1, 0});
          fault::FaultInjector injector(plan, trial.rng.split(1));
          fault::ReliableChannel<int> channel(nullptr, &injector);
          channel.send(0, 1, 7, 16);
          const sim::Round budget =
              cell.heal + 2 * fault::kReliableBackoffCapRounds;
          sim::Round delivered = -1;
          while (channel.round() < budget) {
            channel.step();
            if (!channel.receive(1).empty() && delivered < 0) {
              delivered = channel.round();
            }
            channel.receive(0);  // consume the ack
            if (channel.pending_count() == 0) break;
          }
          return std::vector<double>{
              static_cast<double>(delivered),
              static_cast<double>(delivered - cell.heal),
              static_cast<double>(channel.counters().retransmissions)};
        },
        [&](const HealCell& cell, const std::vector<double>& mean) {
          return std::vector<std::string>{
              support::Table::num(static_cast<std::int64_t>(cell.heal)),
              support::Table::num(mean[0], 0), support::Table::num(mean[1], 0),
              support::Table::num(mean[2], 0)};
        });
    ctx.show("partition_heal", heal_table);
    for (std::size_t i = 0; i < heals.size(); ++i) {
      const double overshoot = heal_means[i][1];
      if (heal_means[i][0] < static_cast<double>(heals[i].heal) ||
          overshoot >
              static_cast<double>(fault::kReliableBackoffCapRounds) + 1.0) {
        std::cerr << "\npartition reconnect exceeded the backoff-cap bound\n";
        return EXIT_FAILURE;
      }
    }
    ctx.interpret(
        "Partition heal: delivery lands at most backoff_cap + 1 = " +
        support::Table::num(
            static_cast<std::int64_t>(fault::kReliableBackoffCapRounds + 1)) +
        " rounds after the cut heals — capped exponential backoff bounds the "
        "reconnect latency at every heal time.");

    // --- F6b: crash-restart recovery --------------------------------------
    // A transient crash window shorter than the settle budget is bridged by
    // retransmission; a crash-stop fails the epoch gracefully and is repaired
    // by the paper's own churn machinery (old id leaves, fresh id joins).
    std::cout << "\nCrash recovery (Algorithm 3 on n = 16, d = 8):\n\n";
    support::Table crash_table(
        {"scenario", "epoch ok", "rounds", "crash_drops", "note"});
    support::Rng recovery_rng(ctx.seed ^ 0xFA11u);
    auto graph_rng = recovery_rng.split(1);
    const auto graph = graph::HGraph::random(16, 8, graph_rng);
    churn::ReconfigInput input;
    input.topology = &graph;
    for (std::size_t v = 0; v < 16; ++v) {
      input.members.push_back(static_cast<sim::NodeId>(v));
    }
    input.leaving.assign(16, false);
    input.joiners.assign(16, {});
    input.sampling.c = 2.0;

    // Crash-stop: node 5 is silenced forever; the epoch must fail, but
    // gracefully — a failure report, never a corrupted topology.
    fault::FaultPlan stop_plan;
    stop_plan.with_crash({5, 0, -1});
    fault::FaultInjector stop_injector(stop_plan, recovery_rng.split(2));
    input.fault_hook = &stop_injector;
    input.reliable_settle_rounds = kSettleRounds;
    auto stop_rng = recovery_rng.split(3);
    const auto crashed = churn::reconfigure(input, stop_rng);
    crash_table.add_row(
        {"crash-stop node 5", crashed.success ? "yes" : "no (graceful)",
         support::Table::num(static_cast<std::int64_t>(crashed.rounds)),
         support::Table::num(stop_injector.counters().crash_drops),
         crashed.failure_reason});

    // Transient outage: node 5 is down for ticks [14, 20) only — a window
    // inside the reliable-wrapped placement/boundary/neighbor phases (the
    // sampling phase, ticks 0-11 here, is unprotected: a mid-sampling outage
    // fails the epoch like the crash-stop above). The settle loops
    // retransmit past the window, so the epoch completes.
    fault::FaultPlan window_plan;
    window_plan.with_crash({5, 14, 20});
    fault::FaultInjector window_injector(window_plan, recovery_rng.split(4));
    input.fault_hook = &window_injector;
    auto window_rng = recovery_rng.split(5);
    const auto transient = churn::reconfigure(input, window_rng);
    crash_table.add_row(
        {"down ticks [14,20)", transient.success ? "yes" : "no",
         support::Table::num(static_cast<std::int64_t>(transient.rounds)),
         support::Table::num(window_injector.counters().crash_drops),
         transient.success ? "outage bridged by retransmission"
                           : transient.failure_reason});

    // Rejoin: the crash-stopped node restarts with fresh state, so id 5
    // leaves and the node re-enters via the join procedure with a fresh id.
    // Epoch failures are w.h.p. events the protocol retries.
    input.fault_hook = nullptr;
    input.reliable_settle_rounds = 0;
    input.leaving[5] = true;
    input.joiners[2].push_back(500);
    churn::ReconfigResult recovered;
    int attempts = 0;
    while (attempts < 5 && !recovered.success) {
      ++attempts;
      auto rejoin_rng = recovery_rng.split(10 + static_cast<std::uint64_t>(attempts));
      recovered = churn::reconfigure(input, rejoin_rng);
    }
    const bool rejoined =
        recovered.success &&
        std::find(recovered.new_members.begin(), recovered.new_members.end(),
                  500) != recovered.new_members.end() &&
        std::find(recovered.new_members.begin(), recovered.new_members.end(),
                  5) == recovered.new_members.end();
    crash_table.add_row(
        {"leave + fresh-id rejoin", recovered.success ? "yes" : "no",
         support::Table::num(static_cast<std::int64_t>(recovered.rounds)),
         "0",
         rejoined ? "id 5 out, id 500 in (" +
                        support::Table::num(attempts) + " attempt(s))"
                  : "rejoin failed"});
    ctx.show("crash_recovery", crash_table);
    const std::vector<double> attempt_series{static_cast<double>(attempts)};
    ctx.results->add_metric("crash_recovery", "rejoin_attempts",
                            attempt_series);
    if (crashed.success || !transient.success || !rejoined) {
      std::cerr << "\ncrash recovery did not behave as claimed\n";
      return EXIT_FAILURE;
    }
    ctx.interpret(
        "Crash recovery: a permanent crash fails the epoch gracefully (old "
        "topology kept); a 6-tick outage is absorbed by the settle loops; "
        "and the crash-stopped member is repaired by the paper's own churn "
        "path — its id leaves and the node rejoins under a fresh id.");
    return EXIT_SUCCESS;
  });
}
