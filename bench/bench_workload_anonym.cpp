// Experiment W3 (DESIGN.md §12): user-to-user traffic through the
// anonymizer's fixed five-round pipeline on the binary DoS overlay. The
// pipeline depth is constant, so unlike W1/W2 the latency distribution under
// light load is flat at the pipeline depth; the sweep raises the arrival
// rate and layers churn epochs plus round-level DoS blocking to show the
// open-loop queueing tail and epoch stalls appearing on top of it.
//
// Extra flag: --smoke 1 truncates the sweep to its first cells (the cell
// list is prefix-stable, so per-cell seeds match the full run).
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "apps/anonym/anonymizer.hpp"
#include "bench/common.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "workload/adapters.hpp"
#include "workload/driver.hpp"

namespace {

using namespace reconfnet;

constexpr std::size_t kRounds = 128;
constexpr std::size_t kSmokeCells = 2;

struct Cell {
  std::size_t size = 1024;
  double rate = 2.0;
  std::size_t epoch = 0;
  double blocked = 0.0;  ///< round-level DoS blocking during serving
};

std::string cell_label(const Cell& cell) {
  std::string label = "n=" + support::Table::num(cell.size) +
                      " rate=" + support::Table::num(cell.rate, 0);
  if (cell.epoch > 0) label += " epoch=" + support::Table::num(cell.epoch);
  if (cell.blocked > 0.0) {
    label += " dos=" + support::Table::num(cell.blocked, 2);
  }
  return label;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "W3_workload_anonym",
      "W3: anonymizer pipeline latency under open-loop user traffic",
      "Claim: the anonymizer's constant-depth pipeline serves an open-loop "
      "user-to-user mix at the pipeline latency until the exit groups "
      "saturate; churn epochs and round-level DoS blocking add queueing "
      "delay without breaking request conservation."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    std::vector<Cell> cells{
        // size  rate  epoch  blocked
        {1024, 2.0, 0, 0.0},    // light load: latency == pipeline depth
        {1024, 8.0, 0, 0.0},    // heavier load
        {1024, 8.0, 16, 0.0},   // churn epochs stall the pipeline
        {1024, 8.0, 0, 0.1},    // round-level DoS blocking
        {4096, 16.0, 32, 0.05},  // scale: churn + blocking together
    };
    if (ctx.args->has("smoke")) cells.resize(kSmokeCells);

    support::Table table({"cell", "thru", "p50", "p99", "p999", "fail",
                          "retries", "epochs ok"});
    const auto means = bench::sweep(
        ctx, table, cells,
        {"throughput", "p50", "p99", "p999", "completed", "failed", "retries",
         "epochs_ok", "epochs_run", "conserved"},
        cell_label,
        [&](const Cell& cell, runtime::TrialContext& trial) {
          workload::AnonymAdapterConfig adapter_config;
          adapter_config.size = cell.size;
          adapter_config.seed = trial.derive_seed();
          workload::DriverConfig config;
          config.rounds = kRounds;
          config.write_fraction = 0.0;  // every op is one routed message
          config.keys.keyspace = adapter_config.users;
          config.arrivals.rate = cell.rate;
          config.per_group_capacity = 2;
          config.epoch_every = cell.epoch;
          config.blocked_fraction = cell.blocked;
          workload::AnonymAdapter adapter(adapter_config);
          const auto report =
              workload::run_workload(config, adapter, trial.rng);
          const bool conserved =
              report.issued ==
              report.completed + report.failed + report.in_flight;
          return std::vector<double>{
              report.throughput,
              static_cast<double>(report.p50),
              static_cast<double>(report.p99),
              static_cast<double>(report.p999),
              static_cast<double>(report.completed),
              static_cast<double>(report.failed),
              static_cast<double>(report.retries),
              static_cast<double>(report.epochs_ok),
              static_cast<double>(report.epochs_run),
              conserved ? 1.0 : 0.0};
        },
        [&](const Cell& cell, const std::vector<double>& mean) {
          return std::vector<std::string>{
              cell_label(cell),
              support::Table::num(mean[0], 2),
              support::Table::num(mean[1], 0),
              support::Table::num(mean[2], 0),
              support::Table::num(mean[3], 0),
              support::Table::num(mean[5], 0),
              support::Table::num(mean[6], 0),
              support::Table::num(mean[7], 0) + "/" +
                  support::Table::num(mean[8], 0)};
        });
    ctx.show("anonym_workload", table);

    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (means[i][9] < 1.0) {
        std::cerr << "\nrequest conservation violated in cell "
                  << cell_label(cells[i]) << "\n";
        return EXIT_FAILURE;
      }
      if (means[i][4] <= 0.0) {
        std::cerr << "\nno requests completed in cell "
                  << cell_label(cells[i]) << "\n";
        return EXIT_FAILURE;
      }
    }
    // The light-load cell's median must sit at the pipeline depth itself —
    // the anonymizer adds no queueing below the knee.
    if (means[0][1] >
        static_cast<double>(apps::kAnonymizerPipelineRounds) + 1.0) {
      std::cerr << "\nlight-load median exceeded the pipeline depth\n";
      return EXIT_FAILURE;
    }
    ctx.interpret(
        "Below the knee the median latency is the five-round pipeline depth "
        "itself; queueing, epoch stalls, and DoS blocking only stretch the "
        "tail — conservation holds in every cell.");
    return EXIT_SUCCESS;
  });
}
