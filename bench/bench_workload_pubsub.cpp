// Experiment W2 (DESIGN.md §12): publish / fetch-since traffic on the robust
// pub-sub under open-loop load. Each publish is three routed store
// round-trips (counter read, entry store, counter bump), so the pub-sub's
// saturation knee sits far below the raw DHT's; the sweep crosses topic skew
// x arrival rate x churn cadence and checks that request conservation and
// epoch survival hold while the fetch cursors keep advancing.
//
// Extra flag: --smoke 1 truncates the sweep to its first cells (the cell
// list is prefix-stable, so per-cell seeds match the full run).
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "fault/plan.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "workload/adapters.hpp"
#include "workload/driver.hpp"

namespace {

using namespace reconfnet;

constexpr std::size_t kRounds = 128;
constexpr std::size_t kSmokeCells = 2;

struct Cell {
  std::size_t size = 1024;
  double theta = 0.0;  ///< topic popularity skew
  double rate = 2.0;
  std::size_t epoch = 0;
  bool faults = false;
};

std::string cell_label(const Cell& cell) {
  std::string label = "n=" + support::Table::num(cell.size) +
                      " theta=" + support::Table::num(cell.theta, 2) +
                      " rate=" + support::Table::num(cell.rate, 0);
  if (cell.epoch > 0) label += " epoch=" + support::Table::num(cell.epoch);
  if (cell.faults) label += " faults";
  return label;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "W2_workload_pubsub",
      "W2: pub-sub publish/fetch mix under open-loop load and churn",
      "Claim: the robust pub-sub serves an open-loop publish/fetch-since mix "
      "through churn epochs and injected faults with exact request "
      "conservation; its three-round-trip publishes move the saturation knee "
      "well below the raw DHT's."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    std::vector<Cell> cells{
        // size  theta  rate  epoch  faults
        {1024, 0.00, 2.0, 0, false},   // uniform topics, light load
        {1024, 0.99, 2.0, 0, false},   // one hot topic
        {1024, 0.99, 8.0, 0, false},   // hot topic past the knee
        {1024, 0.99, 4.0, 24, false},  // churn epochs in the loop
        {4096, 0.99, 8.0, 32, true},   // scale + faults
    };
    if (ctx.args->has("smoke")) cells.resize(kSmokeCells);

    support::Table table({"cell", "thru", "p50", "p99", "p999", "fail",
                          "queue", "epochs ok"});
    const auto means = bench::sweep(
        ctx, table, cells,
        {"throughput", "p50", "p99", "p999", "completed", "failed",
         "max_queue", "epochs_ok", "epochs_run", "conserved"},
        cell_label,
        [&](const Cell& cell, runtime::TrialContext& trial) {
          workload::PubSubAdapterConfig adapter_config;
          adapter_config.size = cell.size;
          adapter_config.topics = 64;
          adapter_config.seed = trial.derive_seed();
          workload::DriverConfig config;
          config.rounds = kRounds;
          config.write_fraction = 0.3;  // publish / fetch mix
          config.keys.keyspace = adapter_config.topics;
          config.keys.theta = cell.theta;
          config.arrivals.rate = cell.rate;
          config.arrivals.poisson = true;
          config.per_group_capacity = 2;
          config.epoch_every = cell.epoch;
          if (cell.faults) {
            config.faults = fault::FaultPlan{}.with_loss(0.01);
          }
          workload::PubSubAdapter adapter(adapter_config);
          const auto report =
              workload::run_workload(config, adapter, trial.rng);
          const bool conserved =
              report.issued ==
              report.completed + report.failed + report.in_flight;
          return std::vector<double>{
              report.throughput,
              static_cast<double>(report.p50),
              static_cast<double>(report.p99),
              static_cast<double>(report.p999),
              static_cast<double>(report.completed),
              static_cast<double>(report.failed),
              static_cast<double>(report.max_queue),
              static_cast<double>(report.epochs_ok),
              static_cast<double>(report.epochs_run),
              conserved ? 1.0 : 0.0};
        },
        [&](const Cell& cell, const std::vector<double>& mean) {
          return std::vector<std::string>{
              cell_label(cell),
              support::Table::num(mean[0], 2),
              support::Table::num(mean[1], 0),
              support::Table::num(mean[2], 0),
              support::Table::num(mean[3], 0),
              support::Table::num(mean[5], 0),
              support::Table::num(mean[6], 0),
              support::Table::num(mean[7], 0) + "/" +
                  support::Table::num(mean[8], 0)};
        });
    ctx.show("pubsub_workload", table);

    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (means[i][9] < 1.0) {
        std::cerr << "\nrequest conservation violated in cell "
                  << cell_label(cells[i]) << "\n";
        return EXIT_FAILURE;
      }
      if (means[i][4] <= 0.0) {
        std::cerr << "\nno requests completed in cell "
                  << cell_label(cells[i]) << "\n";
        return EXIT_FAILURE;
      }
    }
    ctx.interpret(
        "Publishes amplify every workload request into three routed store "
        "round-trips, so the hot-topic knee arrives at a fraction of the raw "
        "DHT rate; conservation and epoch completion hold throughout.");
    return EXIT_SUCCESS;
  });
}
