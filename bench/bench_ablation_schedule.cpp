// Ablation A2 (Lemma 7): the multiset-size constant c. Too small a c makes
// Algorithm 1 run dry (requests hit empty multisets); the lemma's schedule
// turns failure probability negligible once c clears a small threshold.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "graph/hgraph.hpp"
#include "sampling/hgraph_sampler.hpp"
#include "sampling/schedule.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "A2_schedule", "A2: ablation — schedule constant c (Lemma 7)",
      "Success probability of Algorithm 1 as the schedule constant c varies "
      "(n = 256, eps = 1)."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    const std::size_t n = 256;
    support::Rng graph_rng(ctx.seed + 11);
    const auto g = graph::HGraph::random(n, 8, graph_rng);
    const auto estimate = sampling::SizeEstimate::from_true_size(n);

    // Each cell already repeats kRuns times internally so the success ratio
    // is meaningful at --reps 1; --reps multiplies the repetitions.
    constexpr int kRuns = 20;
    support::Table table({"c", "m_0", "m_T", "runs_ok", "dry_events_total"});
    const std::vector<double> cells{0.0625, 0.125, 0.25, 0.5, 1.0, 2.0};
    bench::sweep(
        ctx, table, cells, {"runs_ok", "dry_events"},
        [](double c) { return "c=" + support::Table::num(c, 4); },
        [&](double c, runtime::TrialContext& trial) {
          sampling::SamplingConfig config;
          config.c = c;
          config.beta = c;
          const auto schedule = sampling::hgraph_schedule(estimate, 8, config);
          double ok = 0.0;
          double dry = 0.0;
          for (int run = 0; run < kRuns; ++run) {
            auto run_rng = trial.rng.split(static_cast<std::uint64_t>(run));
            const auto result =
                sampling::run_hgraph_sampling(g, schedule, run_rng);
            ok += result.success ? 1.0 : 0.0;
            dry += static_cast<double>(result.dry_events);
          }
          return std::vector<double>{ok, dry};
        },
        [&](double c, const std::vector<double>& mean) {
          sampling::SamplingConfig config;
          config.c = c;
          config.beta = c;
          const auto schedule = sampling::hgraph_schedule(estimate, 8, config);
          const int digits = ctx.reps > 1 ? 1 : 0;
          return std::vector<std::string>{
              support::Table::num(c, 4),
              support::Table::num(static_cast<std::uint64_t>(schedule.m0())),
              support::Table::num(
                  static_cast<std::uint64_t>(schedule.samples_out())),
              support::Table::num(mean[0], digits) + "/" +
                  support::Table::num(kRuns),
              support::Table::num(mean[1], digits)};
        });
    ctx.show("schedule_c_sweep", table);
    ctx.interpret(
        "A sharp threshold: tiny multisets (c <= 1/8, i.e. m_i of a handful "
        "of ids) run dry under the Chernoff fluctuations of incoming "
        "requests, while success turns on sharply between c = 1 and c = 2 — "
        "empirically confirming that Lemma 7's requirement is about a "
        "constant, not about asymptotically growing slack.");
    return EXIT_SUCCESS;
  });
}
