// Ablation A2 (Lemma 7): the multiset-size constant c. Too small a c makes
// Algorithm 1 run dry (requests hit empty multisets); the lemma's schedule
// turns failure probability negligible once c clears a small threshold.
#include <cstdlib>
#include <iostream>

#include "bench/common.hpp"
#include "graph/hgraph.hpp"
#include "sampling/hgraph_sampler.hpp"
#include "sampling/schedule.hpp"
#include "support/rng.hpp"

int main() {
  using namespace reconfnet;
  bench::banner("A2: ablation — schedule constant c (Lemma 7)",
                "Success probability of Algorithm 1 as the schedule constant "
                "c varies (n = 256, eps = 1).");

  const std::size_t n = 256;
  support::Rng rng(bench::kBenchSeed + 11);
  const auto g = graph::HGraph::random(n, 8, rng);
  const auto estimate = sampling::SizeEstimate::from_true_size(n);

  support::Table table(
      {"c", "m_0", "m_T", "runs_ok", "dry_events_total"});
  constexpr int kRuns = 20;
  for (const double c : {0.0625, 0.125, 0.25, 0.5, 1.0, 2.0}) {
    sampling::SamplingConfig config;
    config.c = c;
    config.beta = c;
    const auto schedule = sampling::hgraph_schedule(estimate, 8, config);
    int ok = 0;
    std::size_t dry = 0;
    for (int run = 0; run < kRuns; ++run) {
      auto run_rng =
          rng.split(static_cast<std::uint64_t>(c * 1000) +
                    static_cast<std::uint64_t>(run));
      const auto result = sampling::run_hgraph_sampling(g, schedule, run_rng);
      ok += result.success ? 1 : 0;
      dry += result.dry_events;
    }
    table.add_row(
        {support::Table::num(c, 4),
         support::Table::num(static_cast<std::uint64_t>(schedule.m0())),
         support::Table::num(
             static_cast<std::uint64_t>(schedule.samples_out())),
         support::Table::num(ok) + "/" + support::Table::num(kRuns),
         support::Table::num(static_cast<std::uint64_t>(dry))});
  }
  table.print(std::cout);
  bench::interpretation(
      "A sharp threshold: tiny multisets (c <= 1/8, i.e. m_i of a handful of "
      "ids) run dry under the Chernoff fluctuations of incoming requests, "
      "while success turns on sharply between c = 1 and c = 2 — empirically "
      "confirming that Lemma 7's requirement is about a constant, not about "
      "asymptotically growing slack.");
  return EXIT_SUCCESS;
}
