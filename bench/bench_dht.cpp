// Experiment T8 (Theorem 8): the RoBuSt-lite robust DHT over the
// reconfiguring k-ary grouped hypercube — request batches are served under
// blocking with bounded rounds and congestion, and records survive
// reconfiguration.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "apps/dht/kary_overlay.hpp"
#include "apps/dht/robust_store.hpp"
#include "apps/pubsub/pubsub.hpp"
#include "bench/common.hpp"
#include "support/rng.hpp"

namespace {

reconfnet::apps::KaryGroupedOverlay::Config overlay_config(
    std::uint64_t seed) {
  reconfnet::apps::KaryGroupedOverlay::Config config;
  config.size = 1024;
  config.arity = 4;
  config.group_c = 2.0;
  config.seed = seed;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "T8_dht", "T8: robust DHT and publish-subscribe (Theorem 8)",
      "Claim: any batch of O(1)-per-server reads/writes is served under "
      "blocking with polylog rounds and congestion; reconfiguration does "
      "not lose data."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    support::Table table({"blocked_frac", "write_ok", "read_ok", "rounds",
                          "max_congestion", "post_reconf_read_ok"});
    const std::vector<double> cells{0.0, 0.2, 0.35, 0.45};
    bench::sweep(
        ctx, table, cells,
        {"write_ok_pct", "read_ok_pct", "rounds", "max_congestion",
         "post_reconf_read_ok_pct"},
        [](double blocked_fraction) {
          return "blocked=" + support::Table::num(blocked_fraction, 2);
        },
        [&](double blocked_fraction, runtime::TrialContext& trial) {
          apps::KaryGroupedOverlay overlay(
              overlay_config(trial.derive_seed()));
          apps::RobustStore store(&overlay);
          auto rng = trial.rng.split(1);

          const std::size_t pipeline =
              static_cast<std::size_t>(overlay.cube().dimension()) + 2;
          std::vector<sim::BlockedSet> blocked(pipeline);
          for (auto& set : blocked) {
            for (sim::NodeId node = 0; node < 1024; ++node) {
              if (rng.bernoulli(blocked_fraction)) set.insert(node);
            }
          }

          // One request per server: the paper's load model.
          std::vector<apps::RobustStore::Request> writes;
          for (std::uint64_t key = 0; key < 1024; ++key) {
            writes.push_back({true, key, key * 3});
          }
          const auto wrote = store.execute(writes, blocked, rng);

          std::vector<apps::RobustStore::Request> reads;
          for (std::uint64_t key = 0; key < 1024; ++key) {
            reads.push_back({false, key, 0});
          }
          const auto read = store.execute(reads, blocked, rng);

          // Reconfigure (no attack) and read everything back through the new
          // groups; only keys whose write succeeded can be expected.
          const auto epoch = store.reconfigure({});
          const auto reread = store.execute(reads, blocked, rng);
          const double post =
              epoch.success && wrote.write_ok > 0
                  ? static_cast<double>(reread.read_ok) /
                        static_cast<double>(wrote.write_ok) * 100.0
                  : 0.0;
          return std::vector<double>{
              static_cast<double>(wrote.write_ok) / 10.24,
              static_cast<double>(read.read_ok) / 10.24,
              static_cast<double>(read.rounds),
              static_cast<double>(read.max_group_congestion), post};
        },
        [&](double blocked_fraction, const std::vector<double>& mean) {
          const int digits = ctx.reps > 1 ? 1 : 0;
          return std::vector<std::string>{
              support::Table::num(blocked_fraction, 2),
              support::Table::num(mean[0], 1) + "%",
              support::Table::num(mean[1], 1) + "%",
              support::Table::num(mean[2], digits),
              support::Table::num(mean[3], digits),
              support::Table::num(mean[4], 1) + "%"};
        });
    ctx.show("dht_batches", table);

    // Publish-subscribe on top of the DHT.
    std::cout << "\nPublish-subscribe emulation (Section 7.3):\n\n";
    constexpr int kTopics = 20;
    support::Table pubsub_table(
        {"topics", "published", "fetched_complete", "rounds/publish"});
    const std::vector<int> pubsub_cells{kTopics};
    bench::sweep(
        ctx, pubsub_table, pubsub_cells,
        {"published", "fetched_complete", "rounds_per_publish"},
        [](int topics) {
          return "pubsub_topics=" + support::Table::num(topics);
        },
        [&](int topics, runtime::TrialContext& trial) {
          apps::KaryGroupedOverlay overlay(
              overlay_config(trial.derive_seed()));
          apps::RobustStore store(&overlay);
          apps::PubSub pubsub(&store);
          auto rng = trial.rng.split(1);
          std::size_t published = 0;
          std::size_t complete = 0;
          sim::Round rounds = 0;
          for (int topic = 0; topic < topics; ++topic) {
            const std::vector<apps::PubSub::Payload> payloads{
                static_cast<std::uint64_t>(topic * 10 + 1),
                static_cast<std::uint64_t>(topic * 10 + 2),
                static_cast<std::uint64_t>(topic * 10 + 3)};
            const auto report = pubsub.publish(
                static_cast<std::uint64_t>(topic), payloads, {}, rng);
            published += report.published;
            rounds = report.rounds;
          }
          (void)store.reconfigure({});
          for (int topic = 0; topic < topics; ++topic) {
            const auto fetched = pubsub.fetch_since(
                static_cast<std::uint64_t>(topic), 0, {}, rng);
            complete +=
                (fetched.complete && fetched.payloads.size() == 3) ? 1u : 0u;
          }
          return std::vector<double>{static_cast<double>(published),
                                     static_cast<double>(complete),
                                     static_cast<double>(rounds)};
        },
        [&](int topics, const std::vector<double>& mean) {
          const int digits = ctx.reps > 1 ? 1 : 0;
          return std::vector<std::string>{
              support::Table::num(topics),
              support::Table::num(mean[0], digits),
              support::Table::num(mean[1], digits) + "/" +
                  support::Table::num(topics),
              support::Table::num(mean[2], digits)};
        });
    ctx.show("pubsub", pubsub_table);

    // Aggregated publication (the paper's Ranade-style combining): every
    // group publishes to ONE hot topic; congestion with vs without combining.
    std::cout << "\nAggregated hot-topic publish (combining vs naive):\n\n";
    support::Table agg_table({"publications", "published", "rounds",
                              "combined_cong", "naive_cong", "reduction"});
    const std::vector<int> agg_cells{1, 4, 16};
    bench::sweep(
        ctx, agg_table, agg_cells,
        {"publications", "published", "rounds", "combined_congestion",
         "naive_congestion"},
        [](int per_group) {
          return "agg_per_group=" + support::Table::num(per_group);
        },
        [&](int per_group, runtime::TrialContext& trial) {
          apps::KaryGroupedOverlay overlay(
              overlay_config(trial.derive_seed()));
          apps::RobustStore store(&overlay);
          apps::PubSub pubsub(&store);
          auto rng = trial.rng.split(1);
          std::vector<apps::PubSub::BatchPublication> batch;
          for (std::uint64_t g = 0; g < overlay.cube().size(); ++g) {
            for (int i = 0; i < per_group; ++i) {
              batch.push_back({g, 1000 + static_cast<std::uint64_t>(per_group),
                               g * 100 + static_cast<std::uint64_t>(i)});
            }
          }
          const auto report = pubsub.aggregate_publish(batch, {}, rng);
          return std::vector<double>{
              static_cast<double>(batch.size()),
              static_cast<double>(report.published),
              static_cast<double>(report.rounds),
              static_cast<double>(report.combined_congestion),
              static_cast<double>(report.naive_congestion)};
        },
        [&](int per_group, const std::vector<double>& mean) {
          (void)per_group;
          const int digits = ctx.reps > 1 ? 1 : 0;
          return std::vector<std::string>{
              support::Table::num(mean[0], digits),
              support::Table::num(mean[1], digits),
              support::Table::num(mean[2], digits),
              support::Table::num(mean[3], digits),
              support::Table::num(mean[4], digits),
              support::Table::num(mean[4] / std::max(mean[3], 1.0), 1) + "x"};
        });
    ctx.show("aggregate_publish", agg_table);
    ctx.interpret(
        "Writes and reads succeed at ~100% through 35% blocking (group "
        "redundancy bridges every routing hop), rounds stay at dimension+1, "
        "and congestion is far below the batch size. All records and all "
        "publications survive a reconfiguration — the RoBuSt-lite contract "
        "of Theorem 8. The aggregated publish shows the Section 7.3 "
        "combining effect: naive hot-topic congestion grows with the batch "
        "while the combined tree congestion stays near the in-degree of the "
        "home group.");
    return EXIT_SUCCESS;
  });
}
