// Ablation A3 (Lemma 17): the group-size constant c of the DoS overlay.
// Small groups get fully blocked by a (1/2-eps)-bounded adversary even when
// it is blind (late); Lemma 17's "choose c large enough" is a real knob.
#include <cstdlib>
#include <iostream>

#include "adversary/dos.hpp"
#include "bench/common.hpp"
#include "dos/overlay.hpp"
#include "support/rng.hpp"

int main() {
  using namespace reconfnet;
  bench::banner("A3: ablation — group-size constant c (Lemma 17)",
                "Silencing probability under 35% late random blocking as the "
                "group-size constant varies (n = 1024).");

  support::Table table({"group_c", "dim", "avg_group", "epochs_ok",
                        "silenced_grp_rounds", "min_avail"});
  constexpr int kEpochs = 4;
  for (const double group_c : {0.25, 0.5, 1.0, 2.0, 3.0}) {
    dos::DosOverlay::Config config;
    config.size = 1024;
    config.group_c = group_c;
    config.seed = bench::kBenchSeed + 12 +
                  static_cast<std::uint64_t>(group_c * 8);
    dos::DosOverlay overlay(config);
    support::Rng rng(config.seed + 1);
    adversary::RandomDos adversary(rng);
    dos::DosOverlay::Attack attack;
    attack.adversary = &adversary;
    attack.lateness = 1000;  // fully blind: pure Lemma 17 regime
    attack.blocked_fraction = 0.35;

    int ok = 0;
    std::size_t silenced = 0;
    double min_avail = 1.0;
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      const auto report = overlay.run_epoch(attack);
      ok += report.success ? 1 : 0;
      silenced += report.silenced_group_rounds;
      min_avail = std::min(min_avail, report.min_available_fraction);
    }
    const double avg = static_cast<double>(overlay.size()) /
                       static_cast<double>(overlay.groups().supernodes());
    table.add_row(
        {support::Table::num(group_c, 2),
         support::Table::num(overlay.dimension()),
         support::Table::num(avg, 1),
         support::Table::num(ok) + "/" + support::Table::num(kEpochs),
         support::Table::num(static_cast<std::uint64_t>(silenced)),
         support::Table::num(min_avail, 3)});
  }
  table.print(std::cout);
  bench::interpretation(
      "With tiny groups (c <= 1/2, ~5 nodes/group) the union of two "
      "consecutive 35% blocking rounds regularly covers an entire group and "
      "epochs fail; from c ~ 2 (groups of ~30) silencing vanishes. This is "
      "the quantitative content of Lemma 17's 'we can choose a constant c'.");
  return EXIT_SUCCESS;
}
