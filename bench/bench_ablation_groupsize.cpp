// Ablation A3 (Lemma 17): the group-size constant c of the DoS overlay.
// Small groups get fully blocked by a (1/2-eps)-bounded adversary even when
// it is blind (late); Lemma 17's "choose c large enough" is a real knob.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "adversary/dos.hpp"
#include "bench/common.hpp"
#include "dos/overlay.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "A3_groupsize", "A3: ablation — group-size constant c (Lemma 17)",
      "Silencing probability under 35% late random blocking as the "
      "group-size constant varies (n = 1024)."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    constexpr int kEpochs = 4;
    support::Table table({"group_c", "dim", "avg_group", "epochs_ok",
                          "silenced_grp_rounds", "min_avail"});
    const std::vector<double> cells{0.25, 0.5, 1.0, 2.0, 3.0};
    bench::sweep(
        ctx, table, cells,
        {"dimension", "avg_group", "epochs_ok", "silenced_group_rounds",
         "min_available_fraction"},
        [](double group_c) {
          return "group_c=" + support::Table::num(group_c, 2);
        },
        [&](double group_c, runtime::TrialContext& trial) {
          dos::DosOverlay::Config config;
          config.size = 1024;
          config.group_c = group_c;
          config.seed = trial.derive_seed();
          dos::DosOverlay overlay(config);
          adversary::RandomDos adversary(trial.rng.split(1));
          dos::DosOverlay::Attack attack;
          attack.adversary = &adversary;
          attack.lateness = 1000;  // fully blind: pure Lemma 17 regime
          attack.blocked_fraction = 0.35;

          double ok = 0.0;
          double silenced = 0.0;
          double min_avail = 1.0;
          for (int epoch = 0; epoch < kEpochs; ++epoch) {
            const auto report = overlay.run_epoch(attack);
            ok += report.success ? 1.0 : 0.0;
            silenced += static_cast<double>(report.silenced_group_rounds);
            min_avail = std::min(min_avail, report.min_available_fraction);
          }
          const double avg = static_cast<double>(overlay.size()) /
                             static_cast<double>(overlay.groups().supernodes());
          return std::vector<double>{
              static_cast<double>(overlay.dimension()), avg, ok, silenced,
              min_avail};
        },
        [&](double group_c, const std::vector<double>& mean) {
          const int digits = ctx.reps > 1 ? 2 : 0;
          return std::vector<std::string>{
              support::Table::num(group_c, 2),
              support::Table::num(mean[0], digits),
              support::Table::num(mean[1], 1),
              support::Table::num(mean[2], digits) + "/" +
                  support::Table::num(kEpochs),
              support::Table::num(mean[3], digits),
              support::Table::num(mean[4], 3)};
        });
    ctx.show("group_c_sweep", table);
    ctx.interpret(
        "With tiny groups (c <= 1/2, ~5 nodes/group) the union of two "
        "consecutive 35% blocking rounds regularly covers an entire group "
        "and epochs fail; from c ~ 2 (groups of ~30) silencing vanishes. "
        "This is the quantitative content of Lemma 17's 'we can choose a "
        "constant c'.");
    return EXIT_SUCCESS;
  });
}
