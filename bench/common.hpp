// Shared helpers for the experiment harnesses. Every bench binary prints a
// banner naming the experiment id from DESIGN.md, one or more tables, and an
// interpretation line so bench_output.txt reads as a self-contained report.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>

#include "support/table.hpp"

namespace reconfnet::bench {

inline constexpr std::uint64_t kBenchSeed = 0xBE5C0FFEE;

inline void banner(const std::string& experiment_id,
                   const std::string& claim) {
  std::cout << "\n=== " << experiment_id << " ===\n" << claim << "\n\n";
}

inline void interpretation(const std::string& text) {
  std::cout << "\n-> " << text << "\n";
}

}  // namespace reconfnet::bench
