// Shared harness for the experiment binaries. Every bench declares a
// BenchSpec (experiment id from DESIGN.md §3, banner title, claim) and a
// body; bench_main gives all of them uniform flags:
//
//   --seed <u64>    master seed (default kBenchSeed)
//   --jobs <n>      worker threads for the trial grid (default 1; 0 = all
//                   hardware threads). Output is byte-identical for any
//                   value — parallelism may only change the "timing"
//                   section of the JSON.
//   --reps <n>      Monte-Carlo repetitions per scenario cell (default 1)
//   --json [path]   write structured results (default BENCH_<id>.json)
//
// Tables still print to stdout exactly as before; the harness additionally
// records them (plus per-cell metric series and aggregates) through
// runtime::BenchResults.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "runtime/results.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/trial_runner.hpp"
#include "support/args.hpp"
#include "support/table.hpp"

namespace reconfnet::bench {

inline constexpr std::uint64_t kBenchSeed = 0xBE5C0FFEE;

inline void banner(const std::string& experiment_id,
                   const std::string& claim) {
  std::cout << "\n=== " << experiment_id << " ===\n" << claim << "\n\n";
}

inline void interpretation(const std::string& text) {
  std::cout << "\n-> " << text << "\n";
}

struct BenchSpec {
  std::string id;     ///< short slug for BENCH_<id>.json, e.g. "T5_dos"
  std::string title;  ///< banner headline, e.g. "T5: DoS survival ..."
  std::string claim;  ///< the paper claim under test
};

struct Context {
  std::uint64_t seed = kBenchSeed;
  std::size_t jobs = 1;
  std::size_t reps = 1;
  const support::Args* args = nullptr;
  runtime::BenchResults* results = nullptr;

  /// Fans `count` trials across `jobs` workers; deterministic in `seed`
  /// and the trial index only (see runtime::TrialRunner).
  template <typename Fn>
  auto run_trials(std::size_t count, Fn&& fn) {
    runtime::TrialRunner runner(seed, jobs);
    return runner.run(count, std::forward<Fn>(fn));
  }

  /// Prints the table and records it in the JSON results.
  void show(const std::string& name, const support::Table& table) {
    table.print(std::cout);
    results->add_table(name, table);
  }

  /// Prints the interpretation line and records it as a note.
  void interpret(const std::string& text) {
    interpretation(text);
    results->add_note(text);
  }
};

/// One scenario sweep: `cells.size() * ctx.reps` trials fan out across the
/// workers (flat index = cell * reps + rep); per-cell metric vectors are
/// averaged over the repetitions, appended to `table` via `row_fn`, and every
/// metric series is recorded in the JSON results under the cell's label.
/// Returns the per-cell mean metric vectors (in cell order) so callers can
/// apply success criteria.
template <typename Cell, typename LabelFn, typename TrialFn, typename RowFn>
std::vector<std::vector<double>> sweep(
    Context& ctx, support::Table& table, const std::vector<Cell>& cells,
    const std::vector<std::string>& metric_names, LabelFn&& label_fn,
    TrialFn&& trial_fn,  // (const Cell&, runtime::TrialContext&) -> vector<double>
    RowFn&& row_fn) {    // (const Cell&, const vector<double>& mean) -> row
  const std::size_t reps = ctx.reps == 0 ? 1 : ctx.reps;
  const auto raw = ctx.run_trials(
      cells.size() * reps, [&](runtime::TrialContext& trial) {
        const Cell& cell = cells[trial.index / reps];
        return trial_fn(cell, trial);
      });
  std::vector<std::vector<double>> means;
  means.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    std::vector<std::vector<double>> series(metric_names.size());
    for (std::size_t r = 0; r < reps; ++r) {
      const auto& metrics = raw[c * reps + r];
      for (std::size_t m = 0; m < metric_names.size(); ++m) {
        series[m].push_back(metrics.at(m));
      }
    }
    std::vector<double> mean(metric_names.size(), 0.0);
    for (std::size_t m = 0; m < metric_names.size(); ++m) {
      for (const double v : series[m]) mean[m] += v;
      mean[m] /= static_cast<double>(reps);
      ctx.results->add_metric(label_fn(cells[c]), metric_names[m],
                              series[m]);
    }
    table.add_row(row_fn(cells[c], mean));
    means.push_back(std::move(mean));
  }
  return means;
}

inline void usage(const BenchSpec& spec) {
  std::cout << spec.id
            << " [--seed <u64>] [--jobs <n>] [--reps <n>] [--json [path]]\n";
}

/// Uniform entry point: parses flags, times the body, writes the JSON file
/// when --json was given. The body's return value is the process exit code
/// and is also recorded in the results.
inline int bench_main(int argc, const char* const* argv,
                      const BenchSpec& spec,
                      const std::function<int(Context&)>& body) {
  try {
    const support::Args args(argc, argv, 1, {"help"}, {"json"});
    if (args.has("help")) {
      usage(spec);
      return EXIT_SUCCESS;
    }
    runtime::BenchResults results(spec.id, spec.title, spec.claim);
    Context ctx;
    ctx.seed = args.get_u64("seed", kBenchSeed);
    ctx.jobs = args.get_size("jobs", 1);
    if (ctx.jobs == 0) ctx.jobs = runtime::ThreadPool::hardware_workers();
    ctx.reps = std::max<std::size_t>(args.get_size("reps", 1), 1);
    ctx.args = &args;
    ctx.results = &results;
    results.set_meta("seed", ctx.seed);
    results.set_meta("reps", static_cast<std::uint64_t>(ctx.reps));
    results.set_meta("git", runtime::build_git_describe());

    banner(spec.title, spec.claim);
    const auto start = std::chrono::steady_clock::now();
    const int code = body(ctx);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    results.set_exit_code(code);
    results.set_timing(ctx.jobs, elapsed.count());
    if (args.has("json")) {
      std::string path = args.get_string("json", "");
      if (path.empty()) path = "BENCH_" + spec.id + ".json";
      results.write_file(path);
      std::cout << "\n[results written to " << path << "]\n";
    }
    return code;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    usage(spec);
    return EXIT_FAILURE;
  }
}

}  // namespace reconfnet::bench
