// Experiment E1 (extension): distributed size estimation replaces the
// Section 4 oracle. Accuracy of the log2 n estimate, the derived log log n
// bound, and the bootstrap cost (flooding rounds ~ diameter).
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "bench/common.hpp"
#include "estimate/size_estimation.hpp"
#include "graph/hgraph.hpp"
#include "support/rng.hpp"

int main() {
  using namespace reconfnet;
  bench::banner(
      "E1 (extension): distributed size estimation",
      "The paper assumes every node knows an upper bound k on log log n; "
      "this protocol computes one (Flajolet-Martin sketches flooded over "
      "the expander) in diameter-many bootstrap rounds.");

  support::Table table({"n", "log2(n)", "estimate", "k=loglog_ub",
                        "true_loglog", "rounds", "kbits/nd/rd"});
  for (const std::size_t n : {64u, 256u, 1024u, 4096u, 16384u}) {
    support::Rng rng(bench::kBenchSeed + n);
    const auto g = graph::HGraph::random(n, 8, rng);
    estimate::SizeEstimationConfig config;
    config.slots = 32;
    const auto result = estimate::estimate_size(g, config, rng);
    const double true_log = std::log2(static_cast<double>(n));
    table.add_row(
        {support::Table::num(static_cast<std::uint64_t>(n)),
         support::Table::num(true_log, 2),
         support::Table::num(result.log_n_upper[0], 2),
         support::Table::num(result.loglog_upper[0]),
         support::Table::num(std::log2(true_log), 2),
         support::Table::num(result.rounds),
         support::Table::num(
             static_cast<double>(result.max_node_bits_per_round) / 1000.0,
             1)});
  }
  table.print(std::cout);
  bench::interpretation(
      "The estimate tracks log2 n within ~1-2 across a 256x size range, and "
      "the derived k upper-bounds log log n with the additive slack the "
      "paper's protocols tolerate. The bootstrap costs ~diameter rounds "
      "(O(log n)) once; afterwards every reconfiguration epoch runs in "
      "O(log log n) rounds with no oracle.");
  return EXIT_SUCCESS;
}
