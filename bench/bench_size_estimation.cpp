// Experiment E1 (extension): distributed size estimation replaces the
// Section 4 oracle. Accuracy of the log2 n estimate, the derived log log n
// bound, and the bootstrap cost (flooding rounds ~ diameter).
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "estimate/size_estimation.hpp"
#include "graph/hgraph.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace reconfnet;
  const bench::BenchSpec spec{
      "E1_size_estimation", "E1 (extension): distributed size estimation",
      "The paper assumes every node knows an upper bound k on log log n; "
      "this protocol computes one (Flajolet-Martin sketches flooded over "
      "the expander) in diameter-many bootstrap rounds."};
  return bench::bench_main(argc, argv, spec, [](bench::Context& ctx) {
    support::Table table({"n", "log2(n)", "estimate", "k=loglog_ub",
                          "true_loglog", "rounds", "kbits/nd/rd"});
    const std::vector<std::size_t> cells{64, 256, 1024, 4096, 16384};
    bench::sweep(
        ctx, table, cells,
        {"log_n_estimate", "loglog_upper", "rounds",
         "max_kbits_per_node_round"},
        [](std::size_t n) {
          return "n=" + support::Table::num(static_cast<std::uint64_t>(n));
        },
        [&](std::size_t n, runtime::TrialContext& trial) {
          auto rng = trial.rng.split(0);
          const auto g = graph::HGraph::random(n, 8, rng);
          estimate::SizeEstimationConfig config;
          config.slots = 32;
          const auto result = estimate::estimate_size(g, config, rng);
          return std::vector<double>{
              result.log_n_upper[0],
              static_cast<double>(result.loglog_upper[0]),
              static_cast<double>(result.rounds),
              static_cast<double>(result.max_node_bits_per_round) / 1000.0};
        },
        [&](std::size_t n, const std::vector<double>& mean) {
          const double true_log = std::log2(static_cast<double>(n));
          const int digits = ctx.reps > 1 ? 1 : 0;
          return std::vector<std::string>{
              support::Table::num(static_cast<std::uint64_t>(n)),
              support::Table::num(true_log, 2),
              support::Table::num(mean[0], 2),
              support::Table::num(mean[1], digits),
              support::Table::num(std::log2(true_log), 2),
              support::Table::num(mean[2], digits),
              support::Table::num(mean[3], 1)};
        });
    ctx.show("size_estimation", table);
    ctx.interpret(
        "The estimate tracks log2 n within ~1-2 across a 256x size range, "
        "and the derived k upper-bounds log log n with the additive slack "
        "the paper's protocols tolerate. The bootstrap costs ~diameter "
        "rounds (O(log n)) once; afterwards every reconfiguration epoch runs "
        "in O(log log n) rounds with no oracle.");
    return EXIT_SUCCESS;
  });
}
